"""Tests for basic MSG behaviour: executions, rendezvous communication, timing."""

import pytest

from repro import Environment, Task
from repro.msg import MSG_task_create, MFLOP, MBYTE
from repro.platform import Platform, make_star


def two_host_platform(speed=1e9, bandwidth=1e6, latency=0.0):
    platform = Platform("pair")
    platform.add_host("alice", speed)
    platform.add_host("bob", speed)
    platform.add_link("wire", bandwidth, latency)
    platform.connect("alice", "bob", "wire")
    return platform


class TestExecution:
    def test_execute_duration_matches_speed(self):
        env = Environment(two_host_platform(speed=1e9))
        times = {}

        def worker(proc):
            yield proc.execute(2e9)
            times["done"] = proc.now

        env.create_process("worker", "alice", worker)
        env.run()
        assert times["done"] == pytest.approx(2.0)

    def test_execute_task_object(self):
        env = Environment(two_host_platform(speed=1e8))
        times = {}

        def worker(proc):
            yield proc.execute(Task("t", compute_amount=5e8))
            times["done"] = proc.now

        env.create_process("worker", "alice", worker)
        env.run()
        assert times["done"] == pytest.approx(5.0)

    def test_two_processes_share_the_host(self):
        env = Environment(two_host_platform(speed=1e9))
        times = {}

        def worker(proc, key):
            yield proc.execute(1e9)
            times[key] = proc.now

        env.create_process("w1", "alice", worker, "w1")
        env.create_process("w2", "alice", worker, "w2")
        env.run()
        assert times["w1"] == pytest.approx(2.0)
        assert times["w2"] == pytest.approx(2.0)

    def test_processes_on_different_hosts_do_not_interfere(self):
        env = Environment(two_host_platform(speed=1e9))
        times = {}

        def worker(proc, key):
            yield proc.execute(1e9)
            times[key] = proc.now

        env.create_process("w1", "alice", worker, "w1")
        env.create_process("w2", "bob", worker, "w2")
        env.run()
        assert times["w1"] == pytest.approx(1.0)
        assert times["w2"] == pytest.approx(1.0)

    def test_execution_priority(self):
        env = Environment(two_host_platform(speed=1e9))
        times = {}

        def worker(proc, key, priority):
            yield proc.execute(1e9, priority=priority)
            times[key] = proc.now

        env.create_process("high", "alice", worker, "high", 3.0)
        env.create_process("low", "alice", worker, "low", 1.0)
        env.run()
        assert times["high"] < times["low"]

    def test_sleep_advances_time_without_cpu(self):
        env = Environment(two_host_platform())
        times = {}

        def sleeper(proc):
            yield proc.sleep(12.5)
            times["woke"] = proc.now

        env.create_process("sleeper", "alice", sleeper)
        env.run()
        assert times["woke"] == pytest.approx(12.5)


class TestCommunication:
    def test_transfer_time_includes_bandwidth_and_latency(self):
        env = Environment(two_host_platform(bandwidth=1e6, latency=0.5))
        times = {}

        def sender(proc):
            yield proc.send(Task("data", data_size=2e6), "box")
            times["sent"] = proc.now

        def receiver(proc):
            task = yield proc.receive("box")
            times["received"] = proc.now
            times["task_name"] = task.name

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert times["received"] == pytest.approx(2.5)
        assert times["sent"] == pytest.approx(2.5)   # rendezvous semantics
        assert times["task_name"] == "data"

    def test_sender_blocks_until_receiver_arrives(self):
        env = Environment(two_host_platform(bandwidth=1e6))
        times = {}

        def sender(proc):
            yield proc.send(Task("data", data_size=1e6), "box")
            times["sent"] = proc.now

        def late_receiver(proc):
            yield proc.sleep(5.0)
            yield proc.receive("box")
            times["received"] = proc.now

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", late_receiver)
        env.run()
        assert times["sent"] == pytest.approx(6.0)
        assert times["received"] == pytest.approx(6.0)

    def test_payload_travels_by_reference(self):
        env = Environment(two_host_platform())
        shared = {"observed": None}
        payload = {"matrix": [1, 2, 3]}

        def sender(proc):
            yield proc.send(Task("d", data_size=1.0, payload=payload), "box")

        def receiver(proc):
            task = yield proc.receive("box")
            shared["observed"] = task.payload

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert shared["observed"] is payload

    def test_loopback_communication_is_instant(self):
        env = Environment(two_host_platform())
        times = {}

        def sender(proc):
            yield proc.send(Task("d", data_size=1e9), "box")

        def receiver(proc):
            yield proc.receive("box")
            times["done"] = proc.now

        env.create_process("s", "alice", sender)
        env.create_process("r", "alice", receiver)
        env.run()
        assert times["done"] == pytest.approx(0.0)

    def test_port_based_put_get(self):
        env = Environment(two_host_platform(bandwidth=1e6))
        got = {}

        def sender(proc):
            yield proc.put(Task("d", data_size=1e6), "bob", port=7)

        def receiver(proc):
            got["task"] = yield proc.get(port=7)

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert got["task"].name == "d"

    def test_two_flows_share_the_link(self):
        env = Environment(two_host_platform(bandwidth=1e6))
        times = {}

        def sender(proc, box):
            yield proc.send(Task("d", data_size=1e6), box)

        def receiver(proc, box, key):
            yield proc.receive(box)
            times[key] = proc.now

        env.create_process("s1", "alice", sender, "box1")
        env.create_process("s2", "alice", sender, "box2")
        env.create_process("r1", "bob", receiver, "box1", "r1")
        env.create_process("r2", "bob", receiver, "box2", "r2")
        env.run()
        # each flow gets half the link: 2 s instead of 1 s
        assert times["r1"] == pytest.approx(2.0)
        assert times["r2"] == pytest.approx(2.0)

    def test_fifo_matching_on_one_mailbox(self):
        env = Environment(two_host_platform())
        order = []

        def sender(proc):
            yield proc.send(Task("first", data_size=1.0), "box")
            yield proc.send(Task("second", data_size=1.0), "box")

        def receiver(proc):
            a = yield proc.receive("box")
            b = yield proc.receive("box")
            order.extend([a.name, b.name])

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert order == ["first", "second"]

    def test_rate_limited_put(self):
        env = Environment(two_host_platform(bandwidth=1e7))
        times = {}

        def sender(proc):
            yield proc.put(Task("d", data_size=1e6), "bob", port=1, rate=1e5)

        def receiver(proc):
            yield proc.get(port=1)
            times["done"] = proc.now

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert times["done"] == pytest.approx(10.0)


class TestPaperListing:
    def test_paper_client_server_exchange(self):
        """The quickstart example's timings on a deterministic platform."""
        platform = Platform("paper")
        platform.add_host("client-host", 1e8)
        platform.add_host("server-host", 1e8)
        platform.add_link("lan", 1.25e6, 1e-3)
        platform.connect("client-host", "server-host", "lan")
        env = Environment(platform)
        times = {}

        def client(proc):
            remote = MSG_task_create("Remote", 30.0, 3.2)
            yield proc.put(remote, "server-host", 22)
            local = MSG_task_create("Local", 10.50, 3.2)
            yield proc.execute(local)
            ack = yield proc.get(23)
            times["client_done"] = proc.now
            times["ack_size"] = ack.data_size

        def server(proc):
            task = yield proc.get(22)
            yield proc.execute(task)
            ack = MSG_task_create("Ack", 0, 0.01)
            yield proc.put(ack, "client-host", 23)
            times["server_done"] = proc.now

        env.create_process("client", "client-host", client)
        env.create_process("server", "server-host", server)
        env.run()
        # transfer: 3.2 MB at 1.25 MB/s + 1 ms = 2.561 s
        transfer = 3.2 * MBYTE / 1.25e6 + 1e-3
        # server computes 30 MFlop at 100 MFlop/s = 0.3 s, ack is 10 KB
        ack_time = 0.01 * MBYTE / 1.25e6 + 1e-3
        assert times["server_done"] == pytest.approx(transfer + 0.3 + ack_time,
                                                     rel=1e-6)
        assert times["client_done"] == pytest.approx(times["server_done"])
        assert times["ack_size"] == pytest.approx(0.01 * MBYTE)

    def test_task_create_units(self):
        task = MSG_task_create("t", 30.0, 3.2)
        assert task.compute_amount == pytest.approx(30.0 * MFLOP)
        assert task.data_size == pytest.approx(3.2 * MBYTE)


class TestEnvironmentApi:
    def test_host_lookup(self):
        env = Environment(make_star(num_hosts=2))
        assert env.host("leaf-0").name == "leaf-0"
        assert env.host_by_name("center").speed == 1e9
        from repro.exceptions import PlatformError
        with pytest.raises(PlatformError):
            env.host("nope")

    def test_run_until_stops_at_bound(self):
        env = Environment(two_host_platform(speed=1e6))

        def worker(proc):
            yield proc.execute(1e9)   # would take 1000 s

        env.create_process("w", "alice", worker)
        final = env.run(until=10.0)
        assert final == pytest.approx(10.0)
        assert env.process_count() == 1   # still alive, simply not finished

    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task("bad", compute_amount=-1)
        with pytest.raises(ValueError):
            Task("bad", data_size=-1)
        with pytest.raises(ValueError):
            Task("bad", priority=0)
