"""Tests for the exception hierarchy and package facade."""

import pytest

import repro
from repro.exceptions import (
    CancelledError,
    DeadlockError,
    HostFailureError,
    NoRouteError,
    PlatformError,
    SimGridError,
    SimTimeoutError,
    TransferFailureError,
)


class TestExceptionHierarchy:
    def test_every_simulation_error_is_a_simgrid_error(self):
        for exc_type in (HostFailureError, TransferFailureError,
                         SimTimeoutError, CancelledError, DeadlockError,
                         PlatformError, NoRouteError):
            assert issubclass(exc_type, SimGridError)

    def test_timeout_is_also_a_builtin_timeout(self):
        assert issubclass(SimTimeoutError, TimeoutError)
        with pytest.raises(TimeoutError):
            raise SimTimeoutError("late")

    def test_no_route_is_a_platform_error(self):
        assert issubclass(NoRouteError, PlatformError)


class TestRemovedMsgApi:
    """The deprecated MSG shim is gone; its names fail with clear errors."""

    @pytest.mark.parametrize("name", ["Environment", "Process",
                                      "ProcessState", "Task"])
    def test_legacy_names_raise_import_error(self, name):
        with pytest.raises(ImportError, match="repro.s4u"):
            getattr(repro, name)

    def test_msg_package_is_gone(self):
        with pytest.raises(ImportError):
            import repro.msg  # noqa: F401


class TestPackageFacade:
    def test_version_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_paper_reference_recorded(self):
        from repro.version import PAPER
        assert "SimGrid" in PAPER and "HPDC" in PAPER
