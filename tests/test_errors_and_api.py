"""Tests for the exception hierarchy, MSG error codes and package facade."""

import pytest

import repro
from repro.exceptions import (
    CancelledError,
    DeadlockError,
    HostFailureError,
    NoRouteError,
    PlatformError,
    SimGridError,
    SimTimeoutError,
    TransferFailureError,
)
from repro.msg.errors import MsgError, error_of_exception, exception_of_error


class TestExceptionHierarchy:
    def test_every_simulation_error_is_a_simgrid_error(self):
        for exc_type in (HostFailureError, TransferFailureError,
                         SimTimeoutError, CancelledError, DeadlockError,
                         PlatformError, NoRouteError):
            assert issubclass(exc_type, SimGridError)

    def test_timeout_is_also_a_builtin_timeout(self):
        assert issubclass(SimTimeoutError, TimeoutError)
        with pytest.raises(TimeoutError):
            raise SimTimeoutError("late")

    def test_no_route_is_a_platform_error(self):
        assert issubclass(NoRouteError, PlatformError)


class TestMsgErrorCodes:
    @pytest.mark.parametrize("exc,code", [
        (None, MsgError.OK),
        (HostFailureError("x"), MsgError.HOST_FAILURE),
        (TransferFailureError("x"), MsgError.TRANSFER_FAILURE),
        (SimTimeoutError("x"), MsgError.TIMEOUT),
        (CancelledError("x"), MsgError.TASK_CANCELED),
    ])
    def test_error_of_exception(self, exc, code):
        assert error_of_exception(exc) is code

    def test_unknown_simgrid_error_maps_to_transfer_failure(self):
        assert error_of_exception(DeadlockError("x")) is MsgError.TRANSFER_FAILURE

    def test_non_simulation_error_rejected(self):
        with pytest.raises(TypeError):
            error_of_exception(ValueError("not ours"))

    def test_exception_of_error_round_trip(self):
        assert exception_of_error(MsgError.OK) is None
        exc = exception_of_error(MsgError.TIMEOUT, "too slow")
        assert isinstance(exc, SimTimeoutError)
        assert "too slow" in str(exc)
        for code in (MsgError.HOST_FAILURE, MsgError.TRANSFER_FAILURE,
                     MsgError.TASK_CANCELED):
            rebuilt = exception_of_error(code)
            assert error_of_exception(rebuilt) is code


class TestPackageFacade:
    def test_version_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_paper_reference_recorded(self):
        from repro.version import PAPER
        assert "SimGrid" in PAPER and "HPDC" in PAPER
