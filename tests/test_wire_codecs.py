"""Tests for the middleware wire-format comparators (GRAS tables E2/E3)."""

import math

import pytest

from repro.gras.arch import ARCHITECTURES
from repro.platform import make_star, make_two_site_grid
from repro.wire import (
    ExchangeModel,
    GrasCodec,
    MpichCodec,
    OmniOrbCodec,
    PASTRY_MESSAGE_DESC,
    PbioCodec,
    XmlCodec,
    all_codecs,
    make_pastry_message,
)
from repro.wire.codec import CodecUnavailableError

X86 = ARCHITECTURES["x86"]
SPARC = ARCHITECTURES["sparc"]
POWERPC = ARCHITECTURES["powerpc"]
MESSAGE = make_pastry_message()


def lan_model():
    platform = make_star(num_hosts=2, link_bandwidth=12.5e6,
                         link_latency=5e-5)
    return ExchangeModel(platform, "leaf-0", "leaf-1")


def wan_model():
    platform = make_two_site_grid(hosts_per_site=1, wan_bandwidth=1.25e6,
                                  wan_latency=80e-3)
    return ExchangeModel(platform, "siteA-0", "siteB-0")


class TestPayload:
    def test_pastry_message_is_deterministic(self):
        assert make_pastry_message(seed=3) == make_pastry_message(seed=3)
        assert make_pastry_message(seed=3) != make_pastry_message(seed=4)

    def test_pastry_message_encodes_with_gras_datadesc(self):
        size = PASTRY_MESSAGE_DESC.wire_size(MESSAGE, X86)
        encoded = PASTRY_MESSAGE_DESC.encode(MESSAGE, X86)
        assert len(encoded) == size
        decoded, _ = PASTRY_MESSAGE_DESC.decode(encoded, X86)
        assert decoded["sender"] == MESSAGE["sender"]
        assert len(decoded["routing_table"]) == len(MESSAGE["routing_table"])

    def test_pastry_message_has_nontrivial_size(self):
        size = PASTRY_MESSAGE_DESC.wire_size(MESSAGE, X86)
        assert 2_000 < size < 50_000     # a few KB, like a real Pastry message


class TestCodecSizes:
    def test_xml_is_much_larger_than_binary(self):
        gras = GrasCodec().wire_size(PASTRY_MESSAGE_DESC, MESSAGE, X86, X86)
        xml = XmlCodec().wire_size(PASTRY_MESSAGE_DESC, MESSAGE, X86, X86)
        assert xml > 1.5 * gras

    def test_omniorb_padding_overhead(self):
        gras = GrasCodec().wire_size(PASTRY_MESSAGE_DESC, MESSAGE, X86, X86)
        orb = OmniOrbCodec().wire_size(PASTRY_MESSAGE_DESC, MESSAGE, X86, X86)
        assert orb > gras

    def test_mpich_refuses_heterogeneous_pairs(self):
        codec = MpichCodec()
        assert not codec.supports(X86, SPARC)
        with pytest.raises(CodecUnavailableError):
            codec.wire_size(PASTRY_MESSAGE_DESC, MESSAGE, X86, SPARC)
        assert codec.supports(SPARC, POWERPC)   # both 32-bit big-endian

    def test_pbio_refuses_powerpc(self):
        codec = PbioCodec()
        assert not codec.supports(POWERPC, X86)
        assert codec.supports(SPARC, X86)

    def test_gras_receiver_pays_conversion_only_when_needed(self):
        codec = GrasCodec()
        homo = codec.conversion_operations(PASTRY_MESSAGE_DESC, MESSAGE,
                                           X86, X86)
        hetero = codec.conversion_operations(PASTRY_MESSAGE_DESC, MESSAGE,
                                             SPARC, X86)
        assert homo.receiver_ops < hetero.receiver_ops
        assert homo.sender_ops == hetero.sender_ops


class TestExchangeModel:
    def test_gras_is_fastest_on_every_supported_pair(self):
        model = lan_model()
        table = model.table(PASTRY_MESSAGE_DESC, MESSAGE)
        for pair, row in table.items():
            gras_time = row["GRAS"].total_time
            for name, result in row.items():
                if name == "GRAS" or not result.available:
                    continue
                assert gras_time <= result.total_time, (
                    f"{name} beat GRAS on {pair}")

    def test_xml_is_slowest_on_every_pair(self):
        model = lan_model()
        table = model.table(PASTRY_MESSAGE_DESC, MESSAGE)
        for pair, row in table.items():
            xml_time = row["XML"].total_time
            for name, result in row.items():
                if name == "XML" or not result.available:
                    continue
                assert xml_time >= result.total_time

    def test_mpich_unavailable_exactly_on_heterogeneous_pairs(self):
        model = lan_model()
        table = model.table(PASTRY_MESSAGE_DESC, MESSAGE)
        assert table["x86->x86"]["MPICH"].available
        assert table["sparc->sparc"]["MPICH"].available
        assert not table["x86->sparc"]["MPICH"].available
        assert not table["powerpc->x86"]["MPICH"].available
        assert math.isinf(table["x86->sparc"]["MPICH"].total_time)

    def test_lan_times_land_in_the_paper_millisecond_range(self):
        """The paper's LAN GRAS numbers are 2.3-6.3 ms; ours must be low-ms."""
        model = lan_model()
        result = model.exchange(GrasCodec(), PASTRY_MESSAGE_DESC, MESSAGE,
                                "x86", "sparc")
        assert 1e-4 < result.total_time < 2e-2

    def test_wan_is_much_slower_than_lan(self):
        """The paper's WAN numbers are ~1 s vs a few ms on the LAN."""
        lan = lan_model().exchange(GrasCodec(), PASTRY_MESSAGE_DESC, MESSAGE,
                                   "x86", "x86")
        wan = wan_model().exchange(GrasCodec(), PASTRY_MESSAGE_DESC, MESSAGE,
                                   "x86", "x86")
        assert wan.total_time > 10 * lan.total_time

    def test_wan_ordering_still_holds(self):
        model = wan_model()
        table = model.table(PASTRY_MESSAGE_DESC, MESSAGE,
                            architectures=("x86",))
        row = table["x86->x86"]
        assert row["GRAS"].total_time <= row["OmniORB"].total_time
        assert row["GRAS"].total_time <= row["XML"].total_time

    def test_table_covers_all_nine_pairs_and_five_codecs(self):
        table = lan_model().table(PASTRY_MESSAGE_DESC, MESSAGE)
        assert len(table) == 9
        assert all(len(row) == 5 for row in table.values())

    def test_all_codecs_order(self):
        names = [codec.name for codec in all_codecs()]
        assert names == ["GRAS", "MPICH", "OmniORB", "PBIO", "XML"]

    def test_loopback_exchange_has_no_transfer_term(self):
        platform = make_star(num_hosts=2)
        model = ExchangeModel(platform, "leaf-0", "leaf-0")
        result = model.exchange(GrasCodec(), PASTRY_MESSAGE_DESC, MESSAGE,
                                "x86", "x86")
        assert result.transfer_time == 0.0

    def test_invalid_conversion_rate_rejected(self):
        platform = make_star(num_hosts=2)
        with pytest.raises(ValueError):
            ExchangeModel(platform, "leaf-0", "leaf-1", conversion_rate=0.0)
