"""Tests for trace parsing, querying and iteration (repro.surf.trace)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.surf.trace import Trace, TraceKind


class TestConstruction:
    def test_simple_trace(self):
        trace = Trace([(0.0, 1.0), (10.0, 0.5)])
        assert len(trace) == 2
        assert trace.period is None

    def test_non_monotonic_times_rejected(self):
        with pytest.raises(ValueError):
            Trace([(5.0, 1.0), (1.0, 0.5)])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Trace([(-1.0, 1.0)])

    def test_period_must_exceed_last_event(self):
        with pytest.raises(ValueError):
            Trace([(0.0, 1.0), (10.0, 0.5)], period=10.0)

    def test_periodic_trace_needs_events(self):
        with pytest.raises(ValueError):
            Trace([], period=5.0)

    def test_constant_helper(self):
        trace = Trace.constant(0.7)
        assert trace.value_at(0.0) == 0.7
        assert trace.value_at(1e9) == 0.7


class TestParsing:
    def test_parse_basic_format(self):
        trace = Trace.parse("0.0 1.0\n5.5 0.25\n")
        assert len(trace) == 2
        assert trace.events[1].time == 5.5
        assert trace.events[1].value == 0.25

    def test_parse_periodicity_and_comments(self):
        text = "# generated trace\nPERIODICITY 12\n0 1\n6 0.5\n"
        trace = Trace.parse(text)
        assert trace.period == 12.0
        assert len(trace) == 2

    def test_parse_loopafter_alias(self):
        trace = Trace.parse("LOOPAFTER 4\n0 1\n")
        assert trace.period == 4.0

    def test_parse_bad_line_raises(self):
        with pytest.raises(ValueError):
            Trace.parse("0 1 extra\n")


class TestValueAt:
    def test_value_before_first_event_is_none(self):
        trace = Trace([(5.0, 0.5)])
        assert trace.value_at(1.0) is None

    def test_value_at_event_and_after(self):
        trace = Trace([(0.0, 1.0), (10.0, 0.5)])
        assert trace.value_at(0.0) == 1.0
        assert trace.value_at(9.99) == 1.0
        assert trace.value_at(10.0) == 0.5
        assert trace.value_at(100.0) == 0.5

    def test_periodic_wraps(self):
        trace = Trace([(0.0, 1.0), (5.0, 0.5)], period=10.0)
        assert trace.value_at(3.0) == 1.0
        assert trace.value_at(7.0) == 0.5
        assert trace.value_at(13.0) == 1.0
        assert trace.value_at(17.0) == 0.5

    def test_negative_time_rejected(self):
        trace = Trace([(0.0, 1.0)])
        with pytest.raises(ValueError):
            trace.value_at(-1.0)


class TestIterator:
    def test_finite_iteration(self):
        trace = Trace([(1.0, 0.5), (2.0, 1.0)])
        events = list(trace.iter_from(0.0))
        assert events == [(1.0, 0.5), (2.0, 1.0)]

    def test_iteration_from_offset_skips_past_events(self):
        trace = Trace([(1.0, 0.5), (2.0, 1.0), (3.0, 0.0)])
        events = list(trace.iter_from(1.5))
        assert events == [(2.0, 1.0), (3.0, 0.0)]

    def test_periodic_iteration_is_infinite(self):
        trace = Trace([(0.0, 1.0), (5.0, 0.5)], period=10.0)
        iterator = trace.iter_from(0.0)
        dates = [iterator.next_event()[0] for _ in range(6)]
        assert dates == [0.0, 5.0, 10.0, 15.0, 20.0, 25.0]

    def test_peek_does_not_consume(self):
        trace = Trace([(1.0, 0.5)])
        iterator = trace.iter_from(0.0)
        assert iterator.peek() == (1.0, 0.5)
        assert iterator.next_event() == (1.0, 0.5)
        assert iterator.peek() is None
        assert iterator.next_event() is None


class TestTraceKind:
    def test_kinds(self):
        assert TraceKind.AVAILABILITY.value == "availability"
        assert TraceKind.STATE.value == "state"


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e4),
                          st.floats(min_value=0, max_value=1.0)),
                min_size=1, max_size=20))
def test_property_value_at_matches_last_event(pairs):
    """value_at(t) always equals the value of the latest event <= t."""
    pairs = sorted(pairs, key=lambda p: p[0])
    trace = Trace(pairs)
    for probe_time, _ in pairs:
        expected = None
        for time, value in pairs:
            if time <= probe_time + 1e-12:
                expected = value
        assert trace.value_at(probe_time) == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=9.0),
                          st.floats(min_value=0, max_value=1.0)),
                min_size=1, max_size=10),
       st.integers(min_value=0, max_value=35))
def test_property_periodic_iterator_dates_increase(pairs, probes):
    """A periodic trace iterator yields strictly increasing dates forever."""
    pairs = sorted(pairs, key=lambda p: p[0])
    trace = Trace(pairs, period=10.0)
    iterator = trace.iter_from(0.0)
    previous = -1.0
    for _ in range(probes + 1):
        date, _ = iterator.next_event()
        assert date >= previous
        previous = date
