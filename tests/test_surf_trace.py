"""Tests for trace parsing, querying and iteration (repro.surf.trace)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import TraceError
from repro.surf.trace import Trace, TraceKind


class TestConstruction:
    def test_simple_trace(self):
        trace = Trace([(0.0, 1.0), (10.0, 0.5)])
        assert len(trace) == 2
        assert trace.period is None

    def test_non_monotonic_times_rejected(self):
        with pytest.raises(ValueError):
            Trace([(5.0, 1.0), (1.0, 0.5)])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Trace([(-1.0, 1.0)])

    def test_period_must_exceed_last_event(self):
        with pytest.raises(ValueError):
            Trace([(0.0, 1.0), (10.0, 0.5)], period=10.0)

    def test_periodic_trace_needs_events(self):
        with pytest.raises(ValueError):
            Trace([], period=5.0)

    def test_constant_helper(self):
        trace = Trace.constant(0.7)
        assert trace.value_at(0.0) == 0.7
        assert trace.value_at(1e9) == 0.7


class TestParsing:
    def test_parse_basic_format(self):
        trace = Trace.parse("0.0 1.0\n5.5 0.25\n")
        assert len(trace) == 2
        assert trace.events[1].time == 5.5
        assert trace.events[1].value == 0.25

    def test_parse_periodicity_and_comments(self):
        text = "# generated trace\nPERIODICITY 12\n0 1\n6 0.5\n"
        trace = Trace.parse(text)
        assert trace.period == 12.0
        assert len(trace) == 2

    def test_parse_loopafter_alias(self):
        trace = Trace.parse("LOOPAFTER 4\n0 1\n")
        assert trace.period == 4.0

    def test_parse_bad_line_raises(self):
        with pytest.raises(ValueError):
            Trace.parse("0 1 extra\n")


class TestValueAt:
    def test_value_before_first_event_is_none(self):
        trace = Trace([(5.0, 0.5)])
        assert trace.value_at(1.0) is None

    def test_value_at_event_and_after(self):
        trace = Trace([(0.0, 1.0), (10.0, 0.5)])
        assert trace.value_at(0.0) == 1.0
        assert trace.value_at(9.99) == 1.0
        assert trace.value_at(10.0) == 0.5
        assert trace.value_at(100.0) == 0.5

    def test_periodic_wraps(self):
        trace = Trace([(0.0, 1.0), (5.0, 0.5)], period=10.0)
        assert trace.value_at(3.0) == 1.0
        assert trace.value_at(7.0) == 0.5
        assert trace.value_at(13.0) == 1.0
        assert trace.value_at(17.0) == 0.5

    def test_negative_time_rejected(self):
        trace = Trace([(0.0, 1.0)])
        with pytest.raises(ValueError):
            trace.value_at(-1.0)


class TestIterator:
    def test_finite_iteration(self):
        trace = Trace([(1.0, 0.5), (2.0, 1.0)])
        events = list(trace.iter_from(0.0))
        assert events == [(1.0, 0.5), (2.0, 1.0)]

    def test_iteration_from_offset_skips_past_events(self):
        trace = Trace([(1.0, 0.5), (2.0, 1.0), (3.0, 0.0)])
        events = list(trace.iter_from(1.5))
        assert events == [(2.0, 1.0), (3.0, 0.0)]

    def test_periodic_iteration_is_infinite(self):
        trace = Trace([(0.0, 1.0), (5.0, 0.5)], period=10.0)
        iterator = trace.iter_from(0.0)
        dates = [iterator.next_event()[0] for _ in range(6)]
        assert dates == [0.0, 5.0, 10.0, 15.0, 20.0, 25.0]

    def test_peek_does_not_consume(self):
        trace = Trace([(1.0, 0.5)])
        iterator = trace.iter_from(0.0)
        assert iterator.peek() == (1.0, 0.5)
        assert iterator.next_event() == (1.0, 0.5)
        assert iterator.peek() is None
        assert iterator.next_event() is None


class TestIteratorFastForward:
    """`iter_from(start)` jumps whole cycles in O(1), not O(start/period)."""

    def test_huge_start_yields_correct_events(self):
        # With the event-by-event fast-forward this would replay 1e8
        # cycles; the arithmetic jump makes it instant.  Period 10.0 and
        # integer event times keep every expected date fp-exact.
        trace = Trace([(0.0, 1.0), (5.0, 0.5)], period=10.0)
        iterator = trace.iter_from(1e9)
        assert iterator.next_event() == (1e9, 1.0)
        assert iterator.next_event() == (1e9 + 5.0, 0.5)
        assert iterator.next_event() == (1e9 + 10.0, 1.0)

    def test_jump_lands_within_two_cycles_of_start(self):
        trace = Trace([(0.0, 1.0), (5.0, 0.5)], period=10.0)
        iterator = trace.iter_from(1e9)
        # The arithmetic jump leaves at most the one-cycle safety slack
        # plus the current cycle for the loop to walk.
        assert iterator._cycle_offset >= 1e9 - 2 * 10.0

    def test_start_inside_first_cycle_unaffected(self):
        trace = Trace([(0.0, 1.0), (5.0, 0.5)], period=10.0)
        iterator = trace.iter_from(7.0)
        assert iterator.next_event() == (10.0, 1.0)

    def test_finite_trace_huge_start_is_exhausted(self):
        trace = Trace([(1.0, 0.5), (2.0, 1.0)])
        assert trace.iter_from(1e9).next_event() is None


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                          st.floats(min_value=0, max_value=1.0)),
                min_size=1, max_size=6),
       st.integers(min_value=0, max_value=500),
       st.integers(min_value=0, max_value=99))
def test_property_fast_forward_matches_naive_skip(pairs, cycles, tenths):
    """Jumping to `start` equals iterating from 0 and discarding < start.

    Period 10.0 with integer event times makes the naive repeated
    addition of the period fp-exact, so the comparison is `==`, not
    approx — the jump must be *semantically identical* to the old loop.
    """
    pairs = sorted(pairs, key=lambda p: p[0])
    trace = Trace(pairs, period=10.0)
    start = cycles * 10.0 + tenths / 10.0
    naive = trace.iter_from(0.0)
    while True:
        nxt = naive.peek()
        if nxt is None or nxt[0] >= start:
            break
        naive.next_event()
    jumped = trace.iter_from(start)
    for _ in range(5):
        assert jumped.next_event() == naive.next_event()


class TestAvailabilityValidation:
    """Bad scaling factors fail at load, naming the trace (satellite fix)."""

    def test_validate_accepts_boundaries_and_chains(self):
        trace = Trace([(0.0, 0.0), (1.0, 1.0)], name="ok")
        assert trace.validate_availability() is trace

    def test_value_above_one_rejected_with_context(self):
        trace = Trace([(0.0, 1.0), (3.0, 1.5)], name="overload")
        with pytest.raises(TraceError) as err:
            trace.validate_availability()
        message = str(err.value)
        assert "overload" in message
        assert "1.5" in message
        assert "t=3.0" in message

    def test_negative_value_rejected(self):
        with pytest.raises(TraceError):
            Trace([(0.0, -0.1)], name="neg").validate_availability()

    def test_nan_value_rejected(self):
        with pytest.raises(TraceError):
            Trace([(0.0, float("nan"))], name="nan").validate_availability()

    def test_platform_add_host_validates_at_declaration(self):
        from repro.platform import Platform
        platform = Platform()
        bad = Trace([(0.0, 2.0)], name="cpu-load")
        with pytest.raises(TraceError, match="cpu-load"):
            platform.add_host("h", 1e9, availability_trace=bad)

    def test_platform_add_link_validates_at_declaration(self):
        from repro.platform import Platform
        platform = Platform()
        bad = Trace([(0.0, -1.0)], name="bw")
        with pytest.raises(TraceError, match="bw"):
            platform.add_link("l", 1e6, bandwidth_trace=bad)

    def test_state_trace_values_unconstrained(self):
        # State traces are boolean-ish (0 = off, else on): values outside
        # [0, 1] are legal and must not be caught by availability checks.
        from repro.platform import Platform
        platform = Platform()
        platform.add_host("h", 1e9,
                          state_trace=Trace([(1.0, 0.0), (2.0, 7.0)]))

    def test_register_resource_traces_validates(self):
        from repro.surf.engine import SurfEngine
        engine = SurfEngine()
        bad = Trace([(0.0, 1.2)], name="direct")
        cpu = engine.cpu_model.add_cpu("h", speed=1e9,
                                       availability_trace=bad)
        with pytest.raises(TraceError, match="direct"):
            engine.register_resource_traces(cpu)


class TestRegisterIdempotency:
    """Registering a resource's traces twice schedules them once."""

    def test_double_register_fires_events_once(self):
        from repro.surf.engine import SurfEngine
        engine = SurfEngine()
        trace = Trace([(0.0, 1.0), (1.0, 0.5)], name="load")
        cpu = engine.cpu_model.add_cpu("h", speed=1e9,
                                       availability_trace=trace)
        engine.register_resource_traces(cpu)
        engine.register_resource_traces(cpu)
        assert len(engine._trace_heap) == 1
        engine.cpu_model.execute(cpu, 2e9)
        # 1 s at full speed, then 1e9 flops left at 5e8 flop/s.  A doubled
        # registration would not change the dates here, but it *would*
        # double every heap pop — the heap length above is the real guard;
        # this run proves the single registration still drives the dip.
        assert engine.run_until_idle() == pytest.approx(3.0)

    def test_failed_validation_allows_retry_after_fix(self):
        # A rejected registration must not poison the idempotency set:
        # the same resource with a corrected trace registers fine.
        from repro.surf.engine import SurfEngine
        engine = SurfEngine()
        bad = Trace([(0.0, 2.0)], name="bad")
        cpu = engine.cpu_model.add_cpu("h", speed=1e9,
                                       availability_trace=bad)
        with pytest.raises(TraceError):
            engine.register_resource_traces(cpu)
        cpu.availability_trace = Trace([(0.0, 0.5)], name="fixed")
        engine.register_resource_traces(cpu)
        assert len(engine._trace_heap) == 1


class TestTraceKind:
    def test_kinds(self):
        assert TraceKind.AVAILABILITY.value == "availability"
        assert TraceKind.STATE.value == "state"


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e4),
                          st.floats(min_value=0, max_value=1.0)),
                min_size=1, max_size=20))
def test_property_value_at_matches_last_event(pairs):
    """value_at(t) always equals the value of the latest event <= t."""
    pairs = sorted(pairs, key=lambda p: p[0])
    trace = Trace(pairs)
    for probe_time, _ in pairs:
        expected = None
        for time, value in pairs:
            if time <= probe_time + 1e-12:
                expected = value
        assert trace.value_at(probe_time) == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=9.0),
                          st.floats(min_value=0, max_value=1.0)),
                min_size=1, max_size=10),
       st.integers(min_value=0, max_value=35))
def test_property_periodic_iterator_dates_increase(pairs, probes):
    """A periodic trace iterator yields strictly increasing dates forever."""
    pairs = sorted(pairs, key=lambda p: p[0])
    trace = Trace(pairs, period=10.0)
    iterator = trace.iter_from(0.0)
    previous = -1.0
    for _ in range(probes + 1):
        date, _ = iterator.next_event()
        assert date >= previous
        previous = date
