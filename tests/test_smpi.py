"""Tests for SMPI: point-to-point, collectives, datatypes and benchmarking."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import MpiError
from repro.platform import make_cluster, make_two_site_grid
from repro.smpi import (
    ANY_SOURCE,
    ANY_TAG,
    MPI_DOUBLE,
    MPI_INT,
    SmpiWorld,
    payload_size,
)
from repro.smpi.collectives import MAX, MIN, PROD, SUM


def run_world(num_ranks, func, platform=None, **kwargs):
    world = SmpiWorld(platform or make_cluster(num_hosts=num_ranks),
                      num_ranks=num_ranks, **kwargs)
    elapsed = world.run(func)
    return world, elapsed


class TestDatatypes:
    def test_extent(self):
        assert MPI_INT.extent(10) == 40
        assert MPI_DOUBLE.extent(3) == 24
        with pytest.raises(ValueError):
            MPI_INT.extent(-1)

    def test_payload_size_prefers_explicit_count(self):
        assert payload_size([1, 2, 3], count=100, datatype=MPI_DOUBLE) == 800

    def test_payload_size_numpy_and_bytes(self):
        assert payload_size(np.zeros(10, dtype="f8")) == 80
        assert payload_size(b"abcd") == 4
        assert payload_size("hello") == 5
        assert payload_size(None) == 0
        assert payload_size(3.14) == 8
        assert payload_size({"a": 1}) > 0


class TestPointToPoint:
    def test_send_recv_by_tag_and_source(self):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                comm.send("for-one", dest=1, tag=5)
                comm.send("also-for-one", dest=1, tag=6)
            elif comm.rank == 1:
                second = comm.recv(source=0, tag=6)
                first = comm.recv(source=0, tag=5)
                results["order"] = (first, second)

        run_world(2, program)
        assert results["order"] == ("for-one", "also-for-one")

    def test_any_source_any_tag(self):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank != 0:
                comm.send(comm.rank, dest=0, tag=comm.rank)
            else:
                seen = set()
                for _ in range(comm.size - 1):
                    value, status = comm.recv(source=ANY_SOURCE, tag=ANY_TAG,
                                              return_status=True)
                    assert value == status.source == status.tag
                    seen.add(value)
                results["seen"] = seen

        run_world(4, program)
        assert results["seen"] == {1, 2, 3}

    def test_isend_irecv_wait(self):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                req = comm.isend(np.arange(100), dest=1, tag=1)
                comm.wait(req)
            elif comm.rank == 1:
                req = comm.irecv(source=0, tag=1)
                data = comm.wait(req)
                results["len"] = len(data)

        run_world(2, program)
        assert results["len"] == 100

    def test_sendrecv_ring(self):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            received = comm.sendrecv(comm.rank, dest=right, source=left)
            results[comm.rank] = received

        run_world(4, program)
        assert results == {0: 3, 1: 0, 2: 1, 3: 2}

    def test_transfer_time_depends_on_size(self):
        def make_program(size_bytes):
            def program(mpi):
                comm = mpi.COMM_WORLD
                if comm.rank == 0:
                    comm.send(np.zeros(int(size_bytes), dtype="u1"), dest=1)
                else:
                    comm.recv(source=0)
            return program

        _, small = run_world(2, make_program(1_000))
        _, large = run_world(2, make_program(10_000_000))
        assert large > small

    def test_bad_rank_rejected(self):
        errors = []

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                try:
                    comm.send(1, dest=99)
                except MpiError:
                    errors.append("caught")

        run_world(2, program)
        assert errors == ["caught"]

    def test_wtime_monotonic_and_positive(self):
        times = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            t0 = mpi.wtime()
            comm.barrier()
            t1 = mpi.wtime()
            if comm.rank == 0:
                times["delta"] = t1 - t0

        run_world(4, program)
        assert times["delta"] >= 0


class TestCollectives:
    @pytest.mark.parametrize("num_ranks", [1, 2, 3, 4, 5, 8])
    def test_bcast_every_rank_gets_root_value(self, num_ranks):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            value = {"data": 42} if comm.rank == 0 else None
            value = comm.bcast(value, root=0)
            results[comm.rank] = value["data"]

        run_world(num_ranks, program)
        assert results == {rank: 42 for rank in range(num_ranks)}

    @pytest.mark.parametrize("num_ranks", [2, 4, 7])
    def test_bcast_from_nonzero_root(self, num_ranks):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            root = num_ranks - 1
            value = "gold" if comm.rank == root else None
            results[comm.rank] = comm.bcast(value, root=root)

        run_world(num_ranks, program)
        assert set(results.values()) == {"gold"}

    @pytest.mark.parametrize("num_ranks", [1, 2, 4, 6])
    def test_reduce_sum_at_root(self, num_ranks):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            total = comm.reduce(comm.rank + 1, op=SUM, root=0)
            if comm.rank == 0:
                results["total"] = total
            else:
                assert total is None

        run_world(num_ranks, program)
        assert results["total"] == sum(range(1, num_ranks + 1))

    def test_reduce_other_operators(self):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            value = comm.rank + 1
            results["max"] = comm.allreduce(value, op=MAX)
            results["min"] = comm.allreduce(value, op=MIN)
            results["prod"] = comm.allreduce(value, op=PROD)

        run_world(4, program)
        assert results["max"] == 4
        assert results["min"] == 1
        assert results["prod"] == 24

    @pytest.mark.parametrize("num_ranks", [2, 4, 5])
    def test_allreduce_numpy_arrays(self, num_ranks):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            local = np.full(8, float(comm.rank))
            total = comm.allreduce(local)
            if comm.rank == 0:
                results["sum"] = total

        run_world(num_ranks, program)
        expected = sum(range(num_ranks))
        assert np.allclose(results["sum"], expected)

    @pytest.mark.parametrize("num_ranks", [2, 3, 6])
    def test_gather_scatter_allgather(self, num_ranks):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            gathered = comm.gather(comm.rank * 10, root=0)
            if comm.rank == 0:
                results["gathered"] = gathered
                pieces = [i * 100 for i in range(comm.size)]
            else:
                assert gathered is None
                pieces = None
            piece = comm.scatter(pieces, root=0)
            assert piece == comm.rank * 100
            everything = comm.allgather(comm.rank)
            assert everything == list(range(comm.size))

        run_world(num_ranks, program)
        assert results["gathered"] == [i * 10 for i in range(num_ranks)]

    @pytest.mark.parametrize("num_ranks", [2, 3, 4])
    def test_alltoall(self, num_ranks):
        checks = []

        def program(mpi):
            comm = mpi.COMM_WORLD
            outgoing = [comm.rank * 100 + dest for dest in range(comm.size)]
            incoming = comm.alltoall(outgoing)
            expected = [src * 100 + comm.rank for src in range(comm.size)]
            checks.append(incoming == expected)

        run_world(num_ranks, program)
        assert all(checks) and len(checks) == num_ranks

    def test_barrier_synchronises_ranks(self):
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                mpi.compute(2e9)    # 2 seconds on a 1 Gflop/s host
            comm.barrier()
            results[comm.rank] = mpi.wtime()

        run_world(4, program)
        # every rank leaves the barrier only after rank 0's computation
        assert min(results.values()) >= 2.0 - 1e-6

    def test_scatter_requires_full_list(self):
        errors = []

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                try:
                    comm.scatter([1], root=0)
                except MpiError:
                    errors.append("caught")
                    # feed the real scatter so rank 1 does not deadlock
                    comm.scatter([0, 1], root=0)
            else:
                comm.scatter(None, root=0)

        run_world(2, program)
        assert errors == ["caught"]


class TestBenchAndHeterogeneity:
    def test_bench_once_runs_block_once(self):
        counts = {"ran": 0}

        def program(mpi):
            comm = mpi.COMM_WORLD
            for _ in range(5):
                with mpi.sampler.bench_once("kernel") as should_run:
                    if should_run:
                        counts["ran"] += 1

        run_world(1, program)
        assert counts["ran"] == 1

    def test_compute_charges_simulated_time(self):
        times = {}

        def program(mpi):
            mpi.compute(3e9)
            times["t"] = mpi.wtime()

        run_world(1, program)          # cluster hosts run at 1 Gflop/s
        assert times["t"] == pytest.approx(3.0)

    def test_heterogeneous_platform_slower_than_cluster(self):
        def program(mpi):
            comm = mpi.COMM_WORLD
            data = np.zeros(1_000_000, dtype="u1")
            for _ in range(3):
                comm.bcast(data if comm.rank == 0 else None, root=0)

        _, lan_time = run_world(4, program)
        _, wan_time = run_world(
            4, program,
            platform=make_two_site_grid(hosts_per_site=2,
                                        wan_bandwidth=1.25e6,
                                        wan_latency=50e-3))
        assert wan_time > lan_time

    def test_world_validation(self):
        with pytest.raises(MpiError):
            SmpiWorld(make_cluster(num_hosts=2), num_ranks=0)

    def test_more_ranks_than_hosts_round_robin(self):
        placements = {}

        def program(mpi):
            placements[mpi.rank] = mpi.host_name

        run_world(4, program, platform=make_cluster(num_hosts=2))
        assert placements[0] == placements[2]
        assert placements[1] == placements[3]
        assert placements[0] != placements[1]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=1000))
def test_property_allreduce_sum_is_rank_independent(num_ranks, offset):
    """allreduce(SUM) returns the same total on every rank."""
    results = []

    def program(mpi):
        comm = mpi.COMM_WORLD
        total = comm.allreduce(comm.rank + offset, op=SUM)
        results.append(total)

    world = SmpiWorld(make_cluster(num_hosts=num_ranks), num_ranks=num_ranks)
    world.run(program)
    expected = sum(range(num_ranks)) + offset * num_ranks
    assert results == [expected] * num_ranks
