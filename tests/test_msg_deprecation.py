"""The MSG demotion contract: deprecated shim, s4u-only internal layers.

Three guarantees, matching the deprecation policy in ``ROADMAP.md``:

1. importing :mod:`repro.msg` emits **exactly one** ``DeprecationWarning``
   (once per process — the shim stays usable, it just announces itself);
2. merely importing :mod:`repro` (or its s4u/GRAS/SMPI/AMOK layers) does
   *not* import the shim — the legacy top-level names (``Environment``,
   ``Process``, ``Task``) resolve lazily;
3. the ported layers (``repro.gras``, ``repro.smpi``, ``repro.amok``)
   contain no ``repro.msg`` import in their source, so none can silently
   re-grow an MSG dependency (the tier-1 warning filter alone cannot catch
   this, because the intentional shim warning is ignored there).
"""

import importlib
import os
import re
import subprocess
import sys
import warnings

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


def _fresh_import_msg():
    """Re-import repro.msg from scratch, returning the warnings captured.

    The original module objects are restored afterwards so class identities
    seen by the rest of the suite are unaffected.
    """
    saved = {name: module for name, module in sys.modules.items()
             if name == "repro.msg" or name.startswith("repro.msg.")}
    import repro
    saved_attr = getattr(repro, "msg", None)
    for name in saved:
        del sys.modules[name]
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.import_module("repro.msg")
        return caught
    finally:
        for name in [n for n in sys.modules
                     if n == "repro.msg" or n.startswith("repro.msg.")]:
            del sys.modules[name]
        sys.modules.update(saved)
        if saved_attr is not None:
            repro.msg = saved_attr


class TestDeprecationWarning:
    def test_importing_msg_emits_exactly_one_deprecation_warning(self):
        caught = _fresh_import_msg()
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)
                        and "repro.msg is deprecated" in str(w.message)]
        assert len(deprecations) == 1
        assert "repro.s4u" in str(deprecations[0].message)

    def test_cached_reimport_is_silent(self):
        importlib.import_module("repro.msg")        # ensure cached
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.import_module("repro.msg")
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_shim_still_simulates_after_warning(self):
        """The deprecated shim keeps working (dates covered by test_msg_*)."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.msg import Environment, Task
        from repro.platform import make_star
        env = Environment(make_star(num_hosts=2))
        final = {}

        def sender(proc):
            yield proc.send(Task("ping", data_size=1e6), "box")

        def receiver(proc):
            task = yield proc.receive("box")
            final["name"] = task.name

        env.create_process("sender", "leaf-0", sender)
        env.create_process("receiver", "leaf-1", receiver)
        assert env.run() > 0
        assert final["name"] == "ping"


class TestLazyLegacyNames:
    def test_importing_repro_does_not_import_msg(self):
        """``import repro`` (and the ported layers) must not pull the shim.

        Run in a subprocess with DeprecationWarning escalated to an error:
        if any import in the chain touched repro.msg, the interpreter
        would die on the shim's warning.
        """
        code = ("import repro, repro.gras, repro.smpi, repro.amok, sys; "
                "assert 'repro.msg' not in sys.modules, 'shim was imported'")
        env = dict(os.environ,
                   PYTHONPATH=SRC + os.pathsep + os.environ.get("PYTHONPATH", ""))
        result = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
            capture_output=True, text=True, env=env)
        assert result.returncode == 0, result.stderr

    def test_legacy_top_level_names_resolve_to_the_shim(self):
        import repro
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.msg import Environment, Process, Task
        assert repro.Environment is Environment
        assert repro.Process is Process
        assert repro.Task is Task
        assert "Environment" in dir(repro)

    def test_unknown_attribute_still_raises(self):
        import repro
        try:
            repro.NoSuchThing
        except AttributeError as exc:
            assert "NoSuchThing" in str(exc)
        else:
            raise AssertionError("expected AttributeError")


class TestNoMsgImportsInPortedLayers:
    def test_no_msg_imports_in_ported_layers(self):
        """grep-equivalent: gras/smpi/amok never depend on repro.msg.

        Catches every spelling: ``from repro.msg import ...``,
        ``import repro.msg``, ``from repro import msg`` and the lazy
        legacy aliases (``from repro import Environment/Process/Task``),
        which would pull the shim just the same.
        """
        pattern = re.compile(
            r"^\s*(?:from\s+repro\.msg\b|import\s+repro\.msg\b"
            r"|from\s+repro\s+import\s+[^#\n]*"
            r"\b(?:msg|Environment|Process|ProcessState|Task)\b)",
            re.MULTILINE)
        offenders = []
        scanned = 0
        for layer in ("gras", "smpi", "amok"):
            root = os.path.join(SRC, "repro", layer)
            assert os.path.isdir(root), f"missing ported layer {root}"
            for dirpath, _dirnames, filenames in os.walk(root):
                for filename in filenames:
                    if not filename.endswith(".py"):
                        continue
                    scanned += 1
                    path = os.path.join(dirpath, filename)
                    with open(path, encoding="utf-8") as fh:
                        if pattern.search(fh.read()):
                            offenders.append(os.path.relpath(path, SRC))
        assert scanned > 10, "suspiciously few files scanned"
        assert not offenders, (
            f"repro.msg imports crept back into ported layers: {offenders}")
