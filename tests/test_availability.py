"""Availability modulation end-to-end: traces, runtime speed, observers.

The paper's SURF panel lists *trace-based simulation of performance
variations due to external load* — CPU availability and network bandwidth
scaled by a trace while the simulation runs.  These tests pin the
hand-computed dates for activities spanning an availability dip, exercise
the runtime ``Host.set_speed`` / ``Link.set_bandwidth`` write path, check
the ``on_resource_speed_change`` observer, and prove the selective solve
only re-solves the LMM component containing the modulated resource.
"""

import pytest

from repro.platform import Platform
from repro.s4u import Engine, this_actor
from repro.surf.engine import SurfEngine
from repro.surf.trace import Trace


def dip_platform(cores=1, host_trace=None, link_trace=None):
    """Two hosts joined by one link; optional traces on host "a" / the link."""
    platform = Platform("dip")
    platform.add_host("a", 1e9, cores=cores, availability_trace=host_trace)
    platform.add_host("b", 1e9)
    platform.add_link("wire", 1e6, latency=0.0, bandwidth_trace=link_trace)
    platform.connect("a", "b", "wire")
    return platform


class TestTraceDrivenDates:
    def test_exec_spans_availability_dip(self):
        # 2 s at 1e9 flop/s (2e9 done), dip to 0.5 -> 1e9 left at 5e8.
        trace = Trace([(0.0, 1.0), (2.0, 0.5)], name="load")
        engine = Engine(dip_platform(host_trace=trace))
        times = {}

        def worker(actor):
            yield actor.execute(3e9)
            times["done"] = actor.now

        engine.add_actor("w", "a", worker)
        engine.run()
        assert times["done"] == pytest.approx(4.0)

    def test_comm_spans_bandwidth_dip(self):
        # 2 s at 1e6 B/s (2e6 sent), dip to 0.5 -> 1e6 left at 5e5.
        trace = Trace([(0.0, 1.0), (2.0, 0.5)], name="bw")
        engine = Engine(dip_platform(link_trace=trace))
        times = {}

        def sender(actor):
            yield engine.mailbox("box").put("payload", size=3e6)

        def receiver(actor):
            yield engine.mailbox("box").get()
            times["received"] = actor.now

        engine.add_actor("s", "a", sender)
        engine.add_actor("r", "b", receiver)
        engine.run()
        assert times["received"] == pytest.approx(4.0)

    def test_trace_dip_fires_speed_observer(self):
        trace = Trace([(0.0, 1.0), (2.0, 0.5)], name="load")
        engine = Engine(dip_platform(host_trace=trace))
        host = engine.host_by_name("a")
        seen = []
        engine.on_resource_speed_change(
            lambda resource, speed: seen.append(
                (resource.name, speed, engine.now)))

        def worker(actor):
            yield actor.execute(3e9)

        engine.add_actor("w", "a", worker)
        engine.run()
        # The t=0 event is a no-op value-wise but still an observed change.
        assert ("a", 5e8, 2.0) in seen
        assert host.available_speed == 5e8

    def test_bandwidth_trace_fires_speed_observer_with_link(self):
        trace = Trace([(0.0, 1.0), (2.0, 0.5)], name="bw")
        engine = Engine(dip_platform(link_trace=trace))
        seen = []
        engine.on_resource_speed_change(
            lambda resource, speed: seen.append((resource.name, speed)))

        def sender(actor):
            yield engine.mailbox("box").put("x", size=3e6)

        def receiver(actor):
            yield engine.mailbox("box").get()

        engine.add_actor("s", "a", sender)
        engine.add_actor("r", "b", receiver)
        engine.run()
        assert ("wire", 5e5) in seen


class TestRuntimeSpeedChange:
    def test_set_speed_reshapes_running_exec(self):
        engine = Engine(dip_platform())
        host = engine.host_by_name("a")
        times = {}

        def worker(actor):
            yield actor.execute(4e9)
            times["done"] = actor.now

        def admin(actor):
            yield this_actor.sleep_for(2.0)
            host.set_speed(5e8)     # 2e9 done, 2e9 left at 5e8 -> +4 s

        engine.add_actor("w", "a", worker)
        engine.add_actor("admin", "b", admin)
        engine.run()
        assert times["done"] == pytest.approx(6.0)
        assert host.speed == 5e8

    def test_set_speed_fires_observer_with_host(self):
        engine = Engine(dip_platform())
        host = engine.host_by_name("a")
        seen = []
        engine.on_resource_speed_change(
            lambda resource, speed: seen.append((resource, speed)))

        def admin(actor):
            yield this_actor.sleep_for(1.0)
            host.set_speed(2e9)

        engine.add_actor("admin", "b", admin)
        engine.run()
        assert seen == [(host, 2e9)]

    def test_set_speed_composes_with_availability_trace(self):
        # The trace keeps scaling the *new* peak: after set_speed(2e9)
        # under availability 0.5 the effective speed is 1e9.
        trace = Trace([(0.0, 0.5)], name="half")
        engine = Engine(dip_platform(host_trace=trace))
        host = engine.host_by_name("a")
        times = {}

        def worker(actor):
            yield actor.execute(2e9)
            times["done"] = actor.now

        def admin(actor):
            yield this_actor.sleep_for(2.0)
            host.set_speed(2e9)     # 1e9 done at 5e8, 1e9 left at 1e9

        engine.add_actor("w", "a", worker)
        engine.add_actor("admin", "b", admin)
        engine.run()
        assert times["done"] == pytest.approx(3.0)
        assert host.available_speed == pytest.approx(1e9)

    def test_set_link_bandwidth_reshapes_running_comm(self):
        engine = Engine(dip_platform())
        link = engine.link_by_name("wire")
        times = {}
        seen = []
        engine.on_resource_speed_change(
            lambda resource, speed: seen.append((resource, speed)))

        def sender(actor):
            yield engine.mailbox("box").put("x", size=4e6)

        def receiver(actor):
            yield engine.mailbox("box").get()
            times["received"] = actor.now

        def admin(actor):
            yield this_actor.sleep_for(2.0)
            link.set_bandwidth(5e5)     # 2e6 sent, 2e6 left at 5e5

        engine.add_actor("s", "a", sender)
        engine.add_actor("r", "b", receiver)
        engine.add_actor("admin", "b", admin)
        engine.run()
        assert times["received"] == pytest.approx(6.0)
        assert seen == [(link, 5e5)]

    def test_set_speed_rejects_nonpositive(self):
        engine = Engine(dip_platform())
        with pytest.raises(ValueError):
            engine.host_by_name("a").set_speed(0.0)


class TestMulticoreBoundResync:
    def test_single_exec_tracks_core_speed_through_dip(self):
        # cores=2: the constraint allows 2e9 flop/s but one exec is capped
        # at a single core.  When availability halves, the per-exec bound
        # must follow the *current* core speed (5e8), not the peak — with
        # a stale bound the lone exec would finish at t=4 instead of t=6.
        trace = Trace([(0.0, 1.0), (2.0, 0.5)], name="load")
        engine = Engine(dip_platform(cores=2, host_trace=trace))
        times = {}

        def worker(actor):
            yield actor.execute(4e9)
            times["done"] = actor.now

        engine.add_actor("w", "a", worker)
        engine.run()
        assert times["done"] == pytest.approx(6.0)

    def test_set_speed_resyncs_multicore_bounds(self):
        engine = Engine(dip_platform(cores=2))
        host = engine.host_by_name("a")
        times = {}

        def worker(actor):
            yield actor.execute(4e9)
            times["done"] = actor.now

        def admin(actor):
            yield this_actor.sleep_for(2.0)
            host.set_speed(5e8)

        engine.add_actor("w", "a", worker)
        engine.add_actor("admin", "b", admin)
        engine.run()
        assert times["done"] == pytest.approx(6.0)

    def test_user_bound_survives_dip_and_recovery(self):
        # A caller cap below the dipped core speed stays in force when the
        # core recovers: merged bound = min(user_bound, core_speed).
        trace = Trace([(0.0, 0.5), (2.0, 1.0)], name="recover")
        engine = Engine(dip_platform(cores=2, host_trace=trace))
        times = {}

        def worker(actor):
            # capped at 2.5e8 flop/s by the caller, below both 5e8 and 1e9
            yield actor.execute(1e9, bound=2.5e8)
            times["done"] = actor.now

        engine.add_actor("w", "a", worker)
        engine.run()
        assert times["done"] == pytest.approx(4.0)


class TestSelectiveResolve:
    def test_dip_resolves_only_affected_component(self):
        # Two CPUs with no shared constraint are separate LMM components;
        # an availability event on one must re-solve exactly that one.
        trace = Trace([(1.0, 0.5)], name="load")
        surf = SurfEngine()
        cpu_a = surf.cpu_model.add_cpu("a", speed=1e9,
                                       availability_trace=trace)
        cpu_b = surf.cpu_model.add_cpu("b", speed=1e9)
        surf.register_resource_traces(cpu_a)
        surf.cpu_model.execute(cpu_a, 1e10)
        surf.cpu_model.execute(cpu_b, 1e10)

        result = surf.step()            # initial solve, trace fires at t=1
        assert result.time == pytest.approx(1.0)
        assert result.speed_changes == [(cpu_a, 0.5)]
        before = dict(surf.cpu_model.solver_stats())

        result = surf.step()            # re-share: only cpu_a is dirty
        assert result.time == pytest.approx(10.0)   # b finishes undisturbed
        after = surf.cpu_model.solver_stats()
        assert after["constraints_solved"] - before["constraints_solved"] == 1
        assert after["variables_solved"] - before["variables_solved"] == 1

        surf.run_until_idle()
        assert surf.clock == pytest.approx(19.0)    # a: 1 + 9e9/5e8
