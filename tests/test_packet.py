"""Tests for the packet-level simulator (the NS2/GTNetS stand-in)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.packet import (
    EventQueue,
    DropTailQueue,
    FlowSpec,
    PacketSimulator,
    TcpConfig,
)
from repro.packet.nic import PacketLink
from repro.packet.tcp import Packet, TcpFlow
from repro.platform import Platform, make_dumbbell


def single_link_platform(bandwidth=1e6, latency=1e-3):
    platform = Platform("single")
    platform.add_host("src", 1e9)
    platform.add_host("dst", 1e9)
    platform.add_link("wire", bandwidth, latency)
    platform.connect("src", "dst", "wire")
    return platform


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda: order.append("late"))
        queue.schedule(1.0, lambda: order.append("early"))
        queue.run()
        assert order == ["early", "late"]
        assert queue.now == 2.0

    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        order = []
        event = queue.schedule(1.0, lambda: order.append("x"))
        event.cancel()
        queue.run()
        assert order == []

    def test_run_until_bound(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda: order.append(1))
        queue.schedule(5.0, lambda: order.append(5))
        queue.run(until=2.0)
        assert order == [1]

    def test_schedule_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            queue.schedule(-1.0, lambda: None)


class TestDropTailQueue:
    def test_drops_when_full(self):
        queue = DropTailQueue(capacity_packets=2)
        flow = object()
        packets = [Packet(flow, seq, 100.0) for seq in range(3)]
        assert queue.push(packets[0])
        assert queue.push(packets[1])
        assert not queue.push(packets[2])
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_fifo_order(self):
        queue = DropTailQueue()
        flow = object()
        first, second = Packet(flow, 0, 1.0), Packet(flow, 1, 1.0)
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second
        assert queue.pop() is None


class TestPacketLink:
    def test_serialisation_plus_propagation_delay(self):
        events = EventQueue()
        link = PacketLink("l", bandwidth=1e6, latency=0.5, events=events)
        arrivals = []
        packet = Packet(object(), 0, 1e5)
        link.transmit(packet, lambda p: arrivals.append(events.now))
        events.run()
        # 1e5 / 1e6 = 0.1 s serialisation + 0.5 s propagation
        assert arrivals == [pytest.approx(0.6)]

    def test_back_to_back_packets_queue_behind_each_other(self):
        events = EventQueue()
        link = PacketLink("l", bandwidth=1e6, latency=0.0, events=events)
        arrivals = []
        for seq in range(3):
            link.transmit(Packet(object(), seq, 1e6),
                          lambda p: arrivals.append(events.now))
        events.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0),
                            pytest.approx(3.0)]


class TestSingleFlow:
    def test_throughput_approaches_link_bandwidth(self):
        platform = single_link_platform(bandwidth=1.25e6, latency=1e-3)
        sim = PacketSimulator(platform)
        results = sim.run([FlowSpec("src", "dst", 5e6)])
        assert len(results) == 1
        # TCP overhead and slow start keep it below the raw capacity, but it
        # must reach a healthy fraction of it.
        assert results[0].throughput > 0.6 * 1.25e6
        assert results[0].throughput <= 1.25e6 * 1.05

    def test_flow_statistics_recorded(self):
        platform = single_link_platform()
        sim = PacketSimulator(platform)
        results = sim.run([FlowSpec("src", "dst", 1e6)])
        result = results[0]
        assert result.size == 1e6
        assert result.finish_time > result.start_time
        stats = sim.link_statistics()
        assert stats["wire:fwd"]["bytes"] >= 1e6
        assert stats["wire:rev"]["packets"] > 0     # the ACK stream

    def test_empty_run(self):
        sim = PacketSimulator(single_link_platform())
        assert sim.run([]) == []

    def test_invalid_flow_size_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec("a", "b", 0.0)


class TestSharing:
    def test_two_flows_share_the_bottleneck_fairly(self):
        platform = make_dumbbell(num_left=2, num_right=2)
        sim = PacketSimulator(platform)
        results = sim.run([FlowSpec("left-0", "right-0", 8e6),
                           FlowSpec("left-1", "right-1", 8e6)])
        rates = [r.throughput for r in results]
        assert len(rates) == 2
        # fairness: neither flow gets more than ~1.6x the other
        assert max(rates) / min(rates) < 1.6
        # both must share the 12.5 MB/s bottleneck: total under capacity
        assert sum(rates) <= 12.5e6 * 1.05

    def test_congestion_produces_losses_on_a_small_buffer(self):
        platform = make_dumbbell(num_left=2, num_right=2,
                                 bottleneck_bandwidth=2.5e6)
        sim = PacketSimulator(platform, queue_capacity=10)
        results = sim.run([FlowSpec("left-0", "right-0", 5e6),
                           FlowSpec("left-1", "right-1", 5e6)])
        total_retx = sum(r.retransmissions for r in results)
        drops = sum(stats["drops"]
                    for stats in sim.link_statistics().values())
        assert drops > 0
        assert total_retx > 0
        # despite the losses, both transfers complete
        assert len(results) == 2


class TestTcpMachinery:
    def test_slow_start_grows_cwnd(self):
        events = EventQueue()
        fwd = [PacketLink("f", 1e7, 1e-3, events)]
        rev = [PacketLink("r", 1e7, 1e-3, events)]
        flow = TcpFlow(0, events, fwd, rev, total_bytes=3e5)
        flow.start()
        events.run()
        assert flow.completed
        assert flow.cwnd > flow.config.initial_cwnd

    def test_rtt_estimation_converges(self):
        events = EventQueue()
        fwd = [PacketLink("f", 1e7, 5e-3, events)]
        rev = [PacketLink("r", 1e7, 5e-3, events)]
        flow = TcpFlow(0, events, fwd, rev, total_bytes=3e5)
        flow.start()
        events.run()
        assert flow.srtt is not None
        assert flow.srtt >= 2 * 5e-3            # at least the propagation RTT
        assert flow.srtt < 0.1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TcpConfig(segment_size=0)
        with pytest.raises(ValueError):
            TcpConfig(initial_cwnd=0)


@settings(max_examples=10, deadline=None)
@given(st.floats(min_value=2e5, max_value=5e6),
       st.floats(min_value=1e5, max_value=1e7))
def test_property_single_flow_never_exceeds_link_capacity(size, bandwidth):
    """Conservation: average throughput can never exceed the link rate."""
    platform = single_link_platform(bandwidth=bandwidth, latency=1e-3)
    sim = PacketSimulator(platform)
    results = sim.run([FlowSpec("src", "dst", size)])
    assert results[0].throughput <= bandwidth * 1.001
