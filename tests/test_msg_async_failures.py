"""Tests for asynchronous MSG communication, timeouts, failures and deadlock."""

import pytest

from repro import (
    DeadlockError,
    Environment,
    HostFailureError,
    SimTimeoutError,
    Task,
    TransferFailureError,
)
from repro.platform import Platform
from repro.surf.trace import Trace


def pair_platform(bandwidth=1e6, latency=0.0, host_traces=None):
    platform = Platform("pair")
    traces = host_traces or {}
    platform.add_host("alice", 1e9, state_trace=traces.get("alice"))
    platform.add_host("bob", 1e9, state_trace=traces.get("bob"))
    platform.add_link("wire", bandwidth, latency,
                      state_trace=traces.get("wire"))
    platform.connect("alice", "bob", "wire")
    return platform


class TestAsyncCommunication:
    def test_isend_then_wait(self):
        env = Environment(pair_platform())
        times = {}

        def sender(proc):
            comm = yield proc.isend(Task("d", data_size=1e6), "box")
            yield proc.execute(5e8)            # overlap compute + comm
            yield proc.wait(comm)
            times["sender_done"] = proc.now

        def receiver(proc):
            task = yield proc.receive("box")
            times["received"] = (task.name, proc.now)

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert times["received"][0] == "d"
        assert times["received"][1] == pytest.approx(1.0)
        assert times["sender_done"] == pytest.approx(1.0)

    def test_irecv_then_wait_returns_task(self):
        env = Environment(pair_platform())
        got = {}

        def sender(proc):
            yield proc.send(Task("payload", data_size=1e6), "box")

        def receiver(proc):
            comm = yield proc.irecv("box")
            task = yield proc.wait(comm)
            got["task"] = task.name

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert got["task"] == "payload"

    def test_dsend_is_fire_and_forget(self):
        env = Environment(pair_platform())
        times = {}

        def sender(proc):
            yield proc.dsend(Task("d", data_size=1e6), "box")
            times["sender_returned"] = proc.now

        def receiver(proc):
            yield proc.receive("box")
            times["received"] = proc.now

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert times["sender_returned"] == pytest.approx(0.0)
        assert times["received"] == pytest.approx(1.0)

    def test_wait_any_returns_first_completed_index(self):
        env = Environment(pair_platform())
        result = {}

        def sender(proc, box, size):
            yield proc.send(Task(box, data_size=size), box)

        def receiver(proc):
            slow = yield proc.irecv("slow")
            fast = yield proc.irecv("fast")
            index = yield proc.wait_any([slow, fast])
            result["index"] = index
            result["time"] = proc.now
            # drain the other one too
            yield proc.wait(slow if index == 1 else fast)

        env.create_process("s-slow", "alice", sender, "slow", 4e6)
        env.create_process("s-fast", "alice", sender, "fast", 1e6)
        env.create_process("r", "bob", receiver)
        env.run()
        assert result["index"] == 1          # "fast" completes first
        assert result["time"] < 4.0

    def test_test_polls_without_blocking(self):
        env = Environment(pair_platform())
        polls = []

        def sender(proc):
            yield proc.sleep(2.0)
            yield proc.send(Task("d", data_size=1e6), "box")

        def receiver(proc):
            comm = yield proc.irecv("box")
            done_now = yield proc.test(comm)
            polls.append(done_now)
            yield proc.sleep(5.0)
            done_later = yield proc.test(comm)
            polls.append(done_later)
            yield proc.wait(comm)

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert polls == [False, True]


class TestTimeouts:
    def test_receive_timeout_raises(self):
        env = Environment(pair_platform())
        outcome = {}

        def lonely(proc):
            try:
                yield proc.receive("nowhere", timeout=3.0)
            except SimTimeoutError:
                outcome["timeout_at"] = proc.now

        env.create_process("lonely", "alice", lonely)
        env.run()
        assert outcome["timeout_at"] == pytest.approx(3.0)

    def test_send_timeout_raises(self):
        env = Environment(pair_platform())
        outcome = {}

        def impatient(proc):
            try:
                yield proc.send(Task("d", data_size=1e6), "void", timeout=2.0)
            except SimTimeoutError:
                outcome["timeout_at"] = proc.now

        env.create_process("impatient", "alice", impatient)
        env.run()
        assert outcome["timeout_at"] == pytest.approx(2.0)

    def test_timeout_does_not_fire_when_comm_completes_first(self):
        env = Environment(pair_platform())
        outcome = {"timeout": False}

        def sender(proc):
            yield proc.send(Task("d", data_size=1e6), "box", timeout=100.0)

        def receiver(proc):
            try:
                task = yield proc.receive("box", timeout=100.0)
                outcome["task"] = task.name
            except SimTimeoutError:
                outcome["timeout"] = True

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert outcome["task"] == "d"
        assert not outcome["timeout"]

    def test_started_transfer_timeout_fails_the_peer(self):
        # A very slow transfer: the receiver times out mid-transfer and the
        # sender observes a transfer failure.
        env = Environment(pair_platform(bandwidth=1e3))
        outcome = {}

        def sender(proc):
            try:
                yield proc.send(Task("huge", data_size=1e9), "box")
            except TransferFailureError:
                outcome["sender"] = ("failed", proc.now)

        def receiver(proc):
            try:
                yield proc.receive("box", timeout=10.0)
            except SimTimeoutError:
                outcome["receiver"] = ("timeout", proc.now)

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert outcome["receiver"] == ("timeout", pytest.approx(10.0))
        assert outcome["sender"][0] == "failed"


class TestFailures:
    def test_host_failure_kills_its_processes(self):
        trace = Trace([(5.0, 0.0)], name="alice-death")
        env = Environment(pair_platform(host_traces={"alice": trace}))
        log = []

        def worker(proc):
            try:
                yield proc.execute(1e12)
                log.append("finished")
            finally:
                log.append(("interrupted", proc.now))

        env.create_process("worker", "alice", worker)
        env.run()
        assert ("interrupted", pytest.approx(5.0)) in log
        assert "finished" not in log

    def test_transfer_fails_when_peer_host_dies(self):
        trace = Trace([(2.0, 0.0)], name="bob-death")
        env = Environment(pair_platform(bandwidth=1e5,
                                        host_traces={"bob": trace}))
        outcome = {}

        def sender(proc):
            try:
                yield proc.send(Task("d", data_size=1e7), "box")
            except TransferFailureError:
                outcome["sender"] = ("transfer-failure", proc.now)

        def receiver(proc):
            yield proc.receive("box")

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert outcome["sender"] == ("transfer-failure", pytest.approx(2.0))

    def test_link_failure_fails_the_transfer(self):
        trace = Trace([(1.0, 0.0)], name="wire-death")
        env = Environment(pair_platform(bandwidth=1e5,
                                        host_traces={"wire": trace}))
        outcome = {}

        def sender(proc):
            try:
                yield proc.send(Task("d", data_size=1e7), "box")
            except TransferFailureError:
                outcome["sender_failed_at"] = proc.now

        def receiver(proc):
            try:
                yield proc.receive("box")
            except TransferFailureError:
                outcome["receiver_failed_at"] = proc.now

        env.create_process("s", "alice", sender)
        env.create_process("r", "bob", receiver)
        env.run()
        assert outcome["sender_failed_at"] == pytest.approx(1.0)
        assert outcome["receiver_failed_at"] == pytest.approx(1.0)

    def test_execute_on_dead_host_raises_host_failure(self):
        env = Environment(pair_platform())
        outcome = {}

        def worker(proc):
            yield proc.sleep(1.0)
            try:
                yield proc.execute(1e9, host=proc.env.host("bob"))
            except HostFailureError:
                outcome["refused"] = True

        def saboteur(proc):
            yield proc.sleep(0.5)
            proc.env.host("bob").turn_off()

        env.create_process("worker", "alice", worker)
        env.create_process("saboteur", "alice", saboteur)
        env.run()
        assert outcome.get("refused") is True

    def test_explicit_host_turn_off_and_on(self):
        env = Environment(pair_platform())
        host = env.host("bob")
        assert host.is_on
        host.turn_off()
        assert not host.is_on
        host.turn_on()
        assert host.is_on


class TestDeadlock:
    def test_deadlock_detected_and_simulation_ends(self):
        env = Environment(pair_platform())

        def waiter(proc):
            yield proc.receive("never")

        env.create_process("waiter", "alice", waiter)
        env.run()
        assert env.deadlocked

    def test_deadlock_raises_when_requested(self):
        env = Environment(pair_platform(), raise_on_deadlock=True)

        def waiter(proc):
            yield proc.receive("never")

        env.create_process("waiter", "alice", waiter)
        with pytest.raises(DeadlockError):
            env.run()

    def test_no_deadlock_flag_on_clean_termination(self):
        env = Environment(pair_platform())

        def quick(proc):
            yield proc.sleep(1.0)

        env.create_process("quick", "alice", quick)
        env.run()
        assert not env.deadlocked
