"""Tests for GRAS messaging: simulation backend, real-life backend, bench."""

import pytest

from repro.exceptions import SimTimeoutError, UnknownMessageError
from repro.gras import RlWorld, SimWorld
from repro.gras.bench import BenchRecorder
from repro.gras.message import MessageRegistry, MessageType
from repro.gras.datadesc import datadesc_by_name
from repro.platform import make_star, make_two_site_grid


def star(bandwidth=12.5e6, latency=5e-4):
    return make_star(num_hosts=2, link_bandwidth=bandwidth,
                     link_latency=latency)


class TestMessageRegistry:
    def test_declare_and_lookup(self):
        registry = MessageRegistry()
        registry.declare("ping", "int")
        assert registry.by_name("ping").payload_desc is datadesc_by_name("int")
        assert registry.is_declared("ping")

    def test_undeclared_type_rejected(self):
        registry = MessageRegistry()
        with pytest.raises(UnknownMessageError):
            registry.by_name("nope")

    def test_callback_registration_requires_declared_type(self):
        registry = MessageRegistry()
        with pytest.raises(UnknownMessageError):
            registry.register_callback("nope", lambda *a: None)
        registry.declare("ok")
        registry.register_callback("ok", lambda *a: None)
        assert registry.callback_for("ok") is not None
        registry.unregister_callback("ok")
        assert registry.callback_for("ok") is None

    def test_wire_size_includes_header_and_payload(self):
        msgtype = MessageType("ping", datadesc_by_name("int"))
        empty = MessageType("empty", None)
        assert msgtype.wire_size(5) > empty.wire_size(None)


class TestSimulationMode:
    def test_ping_pong_with_msg_wait(self):
        world = SimWorld(star())
        log = {}

        def server(proc):
            proc.msgtype_declare("ping", "int")
            proc.msgtype_declare("pong", "int")
            proc.socket_server(4000)
            source, payload = proc.msg_wait(60.0, "ping")
            proc.msg_send(proc.socket_client(source.host, source.port),
                          "pong", payload * 2)

        def client(proc):
            proc.msgtype_declare("ping", "int")
            proc.msgtype_declare("pong", "int")
            proc.socket_server(4001)
            proc.os_sleep(0.5)
            proc.msg_send(proc.socket_client("leaf-1", 4000), "ping", 21)
            _, answer = proc.msg_wait(60.0, "pong")
            log["answer"] = answer
            log["time"] = proc.os_time()

        world.add_process("server", "leaf-1", server)
        world.add_process("client", "leaf-0", client)
        world.run()
        assert log["answer"] == 42
        assert log["time"] > 0.5

    def test_callback_dispatch_with_msg_handle(self):
        world = SimWorld(star())
        handled = []

        def server(proc):
            proc.msgtype_declare("ping", "int")

            def on_ping(p, source, payload):
                handled.append(payload)

            proc.cb_register("ping", on_ping)
            proc.socket_server(4000)
            assert proc.msg_handle(60.0)

        def client(proc):
            proc.msgtype_declare("ping", "int")
            proc.socket_server(4001)
            proc.msg_send(proc.socket_client("leaf-1", 4000), "ping", 7)

        world.add_process("server", "leaf-1", server)
        world.add_process("client", "leaf-0", client)
        world.run()
        assert handled == [7]

    def test_msg_handle_without_callback_raises(self):
        world = SimWorld(star())
        errors = []

        def server(proc):
            proc.msgtype_declare("mystery", "int")
            proc.socket_server(4000)
            try:
                proc.msg_handle(60.0)
            except UnknownMessageError:
                errors.append("unknown")

        def client(proc):
            proc.msgtype_declare("mystery", "int")
            proc.socket_server(4001)
            proc.msg_send(proc.socket_client("leaf-1", 4000), "mystery", 1)

        world.add_process("server", "leaf-1", server)
        world.add_process("client", "leaf-0", client)
        world.run()
        assert errors == ["unknown"]

    def test_msg_wait_buffers_unexpected_types(self):
        world = SimWorld(star())
        order = []

        def server(proc):
            proc.msgtype_declare("a", "int")
            proc.msgtype_declare("b", "int")
            proc.socket_server(4000)
            # wait for "b" first even though "a" arrives first
            _, b_val = proc.msg_wait(60.0, "b")
            order.append(("b", b_val))
            _, a_val = proc.msg_wait(60.0, "a")
            order.append(("a", a_val))

        def client(proc):
            proc.msgtype_declare("a", "int")
            proc.msgtype_declare("b", "int")
            proc.socket_server(4001)
            peer = proc.socket_client("leaf-1", 4000)
            proc.msg_send(peer, "a", 1)
            proc.msg_send(peer, "b", 2)

        world.add_process("server", "leaf-1", server)
        world.add_process("client", "leaf-0", client)
        world.run()
        assert order == [("b", 2), ("a", 1)]

    def test_msg_wait_timeout(self):
        world = SimWorld(star())
        outcome = {}

        def lonely(proc):
            proc.msgtype_declare("ping", "int")
            proc.socket_server(4000)
            try:
                proc.msg_wait(3.0, "ping")
            except SimTimeoutError:
                outcome["timeout_at"] = proc.os_time()

        world.add_process("lonely", "leaf-0", lonely)
        world.run()
        assert outcome["timeout_at"] == pytest.approx(3.0, abs=1e-6)

    def test_msg_handle_timeout_returns_false(self):
        world = SimWorld(star())
        outcome = {}

        def lonely(proc):
            proc.msgtype_declare("ping", "int")
            proc.cb_register("ping", lambda *a: None)
            proc.socket_server(4000)
            outcome["handled"] = proc.msg_handle(2.0)

        world.add_process("lonely", "leaf-0", lonely)
        world.run()
        assert outcome["handled"] is False

    def test_cross_architecture_payload(self):
        world = SimWorld(star(), arch_by_host={"leaf-0": "x86",
                                               "leaf-1": "powerpc"})
        received = {}

        def server(proc):
            proc.msgtype_declare("numbers", "double")
            proc.socket_server(4000)
            _, value = proc.msg_wait(60.0, "numbers")
            received["value"] = value

        def client(proc):
            proc.msgtype_declare("numbers", "double")
            proc.socket_server(4001)
            proc.msg_send(proc.socket_client("leaf-1", 4000), "numbers",
                          2.718281828)

        world.add_process("server", "leaf-1", server)
        world.add_process("client", "leaf-0", client)
        world.run()
        assert received["value"] == pytest.approx(2.718281828)

    def test_bench_always_injects_simulated_time(self):
        world = SimWorld(star())
        times = {}

        def worker(proc):
            start = proc.os_time()
            with proc.bench_always("spin"):
                total = 0
                for i in range(50000):
                    total += i
            times["elapsed"] = proc.os_time() - start

        world.add_process("worker", "leaf-0", worker)
        world.run()
        assert times["elapsed"] > 0.0

    def test_message_size_drives_transfer_time(self):
        """A bigger payload takes longer on the same (slow) link."""
        durations = {}
        for label, count in (("small", 10), ("large", 100000)):
            world = SimWorld(make_star(num_hosts=2, link_bandwidth=1e5,
                                       link_latency=1e-4))

            def server(proc):
                from repro.gras.datadesc import ArrayDesc, ScalarDesc
                proc.msgtype_declare("blob", ArrayDesc(ScalarDesc("uint8")))
                proc.socket_server(4000)
                proc.msg_wait(600.0, "blob")

            def client(proc, n):
                from repro.gras.datadesc import ArrayDesc, ScalarDesc
                proc.msgtype_declare("blob", ArrayDesc(ScalarDesc("uint8")))
                proc.socket_server(4001)
                proc.msg_send(proc.socket_client("leaf-1", 4000), "blob",
                              [0] * n)

            world.add_process("server", "leaf-1", server)
            world.add_process("client", "leaf-0", client, count)
            durations[label] = world.run()
        assert durations["large"] > durations["small"] * 10


class TestRealLifeMode:
    def test_real_ping_pong_over_localhost(self):
        world = RlWorld()
        log = {}

        def server(proc):
            proc.msgtype_declare("ping", "int")
            proc.msgtype_declare("pong", "int")
            proc.socket_server(4310)
            source, payload = proc.msg_wait(10.0, "ping")
            proc.msg_send(proc.socket_client(source.host, source.port),
                          "pong", payload + 1)

        def client(proc):
            proc.msgtype_declare("ping", "int")
            proc.msgtype_declare("pong", "int")
            proc.socket_server(0)
            proc.os_sleep(0.2)
            proc.msg_send(proc.socket_client("127.0.0.1", 4310), "ping", 41)
            _, answer = proc.msg_wait(10.0, "pong")
            log["answer"] = answer

        world.add_process("server", server)
        world.add_process("client", client)
        world.run(timeout=20.0)
        assert log["answer"] == 42

    def test_real_cross_architecture_encoding(self):
        """Payloads encoded with a big-endian layout decode correctly."""
        world = RlWorld()
        received = {}

        def server(proc):
            proc.msgtype_declare("value", "int")
            proc.socket_server(4311)
            _, value = proc.msg_wait(10.0, "value")
            received["value"] = value

        def client(proc):
            proc.msgtype_declare("value", "int")
            proc.socket_server(0)
            proc.os_sleep(0.2)
            proc.msg_send(proc.socket_client("127.0.0.1", 4311), "value",
                          123456789)

        world.add_process("server", server, arch="x86")
        world.add_process("client", client, arch="sparc")
        world.run(timeout=20.0)
        assert received["value"] == 123456789

    def test_rl_errors_are_reported(self):
        world = RlWorld()

        def buggy(proc):
            raise ValueError("application bug")

        world.add_process("buggy", buggy)
        with pytest.raises(ValueError):
            world.run(timeout=10.0)


class TestBenchRecorder:
    def test_record_averages(self):
        recorder = BenchRecorder()
        recorder.record("k", 1.0)
        recorder.record("k", 3.0)
        assert recorder.duration_of("k") == pytest.approx(2.0)
        assert recorder.count_of("k") == 2
        assert recorder.has("k")

    def test_missing_key(self):
        recorder = BenchRecorder()
        with pytest.raises(KeyError):
            recorder.duration_of("missing")

    def test_negative_duration_rejected(self):
        recorder = BenchRecorder()
        with pytest.raises(ValueError):
            recorder.record("k", -1.0)

    def test_clear(self):
        recorder = BenchRecorder()
        recorder.record("k", 1.0)
        recorder.clear()
        assert not recorder.has("k")
