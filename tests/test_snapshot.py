"""Engine snapshot/fork: a restored blob replays bit-identically.

The PR-8 contract extends the kernel's determinism guarantee across
serialization: ``engine.snapshot()`` at a quiescent point, then
``Engine.restore(blob)`` — in this process or another one — must produce
exactly the simulated dates and event order of the engine that never got
snapshotted.  That must hold for the flat kernel, the sharded kernel,
with parallel solves attached, and through mid-churn FailureInjector
state (pending pulse timers + Mersenne RNG position).

Below that, the SURF layer itself must survive ``copy.deepcopy`` and
``pickle`` mid-run (actions in flight), and a snapshot/restore cycle of
a parallel engine must leave no ``/dev/shm`` segment behind.
"""

import copy
import multiprocessing
import os
import pickle

import pytest

from repro import s4u
from repro.exceptions import (
    HostFailureError,
    SimTimeoutError,
    SnapshotError,
    TransferFailureError,
)
from repro.kernel.timer import TimerQueue
from repro.platform import Platform, make_star, make_zoned_grid
from repro.s4u import FailureInjector
from repro.surf.engine import SurfEngine
from repro.surf.shard import ParallelSolveExecutor
from repro.surf.trace import Trace


NUM_LEAVES = 3


def _make_engine(sharded=False, parallel_solves=False):
    if sharded:
        platform = make_zoned_grid(num_sites=3, hosts_per_site=2)
    else:
        platform = make_star(num_hosts=NUM_LEAVES, host_speed=1e9,
                             link_bandwidth=1e7, link_latency=1e-4)
    return s4u.Engine(platform, sharded=sharded,
                      parallel_solves=parallel_solves)


def _worker_hosts(engine):
    """The churnable leaf hosts (everything but the first, the sink's)."""
    names = sorted(engine.platform.hosts)
    return names[0], names[1:1 + NUM_LEAVES]


def _run_warm_phase(engine):
    """Phase 1: a small master/worker exchange, run to completion."""
    center, leaves = _worker_hosts(engine)

    def worker(actor, index):
        yield actor.execute(1e7 * (index + 1))
        comm = yield engine.mailbox("warm").put_async(index, size=1e4)
        yield comm.wait()

    def sink(actor):
        for _ in leaves:
            yield engine.mailbox("warm").get()

    engine.add_actor("warm-sink", center, sink)
    for index, host in enumerate(leaves):
        engine.add_actor(f"warm-{index}", host, worker, index)
    return engine.run()


def _run_measured_phase(engine, seed=None):
    """Phase 2: three rounds per worker, optional seeded churn; returns
    ``(final_date, chronological_log, injector_events)``."""
    center, leaves = _worker_hosts(engine)
    log = []

    def worker(actor, index):
        for round_no in range(3):
            comp = yield actor.exec_async(5e6 * (index + 1))
            try:
                yield comp.wait()
            except HostFailureError:
                log.append((engine.now, "exec-failed", index, round_no))
                continue
            comm = yield engine.mailbox("sink").put_async(
                (index, round_no), size=2e4)
            try:
                yield comm.wait(timeout=0.05)
                log.append((engine.now, "sent", index, round_no))
            except (SimTimeoutError, TransferFailureError):
                log.append((engine.now, "send-lost", index, round_no))

    def sink(actor):
        for attempt in range(6 * len(leaves)):
            try:
                got = yield engine.mailbox("sink").get(timeout=0.05)
                log.append((engine.now, "got", got))
            except (SimTimeoutError, TransferFailureError):
                log.append((engine.now, "miss", attempt))

    engine.add_actor("sink", center, sink)
    for index, host in enumerate(leaves):
        engine.add_actor(f"w{index}", host, worker, index)
    injector = None
    if seed is not None:
        injector = FailureInjector(engine, seed=seed, hosts=leaves,
                                   mtbf=0.01, mean_downtime=0.02,
                                   max_failures=5).start()
    final = engine.run()
    return final, log, injector.events if injector else []


def _cold_run(sharded=False, parallel_solves=False, seed=None):
    engine = _make_engine(sharded, parallel_solves)
    _run_warm_phase(engine)
    try:
        return _run_measured_phase(engine, seed)
    finally:
        engine.close()


def _forked_run(sharded=False, parallel_solves=False, seed=None):
    engine = _make_engine(sharded, parallel_solves)
    _run_warm_phase(engine)
    blob = engine.snapshot()
    engine.close()
    restored = s4u.Engine.restore(blob)
    try:
        return _run_measured_phase(restored, seed)
    finally:
        restored.close()


# ---------------------------------------------------------------------------
# fork vs cold bit-identity
# ---------------------------------------------------------------------------

class TestForkEqualsCold:
    def test_flat_kernel(self):
        assert _forked_run() == _cold_run()

    def test_flat_kernel_with_churn(self):
        cold = _cold_run(seed=11)
        fork = _forked_run(seed=11)
        assert fork == cold
        assert cold[2], "the churn seed must actually inject failures"

    def test_sharded_kernel(self):
        assert _forked_run(sharded=True) == _cold_run(sharded=True)

    def test_sharded_kernel_with_churn(self):
        assert _forked_run(sharded=True, seed=3) == _cold_run(
            sharded=True, seed=3)

    def test_parallel_solves_engine(self):
        assert (_forked_run(sharded=True, parallel_solves=True)
                == _cold_run(sharded=True, parallel_solves=True))

    def test_snapshot_is_non_destructive(self):
        """The snapshotted engine keeps running identically afterwards."""
        engine = _make_engine()
        _run_warm_phase(engine)
        engine.snapshot()
        try:
            assert _run_measured_phase(engine, seed=5) == _cold_run(seed=5)
        finally:
            engine.close()

    def test_pending_injector_pulses_travel(self):
        """An injector armed before the snapshot churns the restored run."""
        def churned(snapshot_between):
            engine = _make_engine()
            _, leaves = _worker_hosts(engine)
            _run_warm_phase(engine)
            injector = FailureInjector(engine, seed=23, hosts=leaves,
                                       mtbf=0.01, mean_downtime=0.02,
                                       max_failures=5).start()
            if snapshot_between:
                blob = engine.snapshot()
                engine.close()
                engine = s4u.Engine.restore(blob)
            final, log, _ = _run_measured_phase(engine)
            engine.close()
            return final, log

        cold = churned(snapshot_between=False)
        fork = churned(snapshot_between=True)
        assert fork == cold


# ---------------------------------------------------------------------------
# quiescence + blob validation
# ---------------------------------------------------------------------------

class TestSnapshotGuards:
    def test_snapshot_requires_quiescence(self):
        engine = _make_engine()

        def forever(actor):
            while True:
                yield actor.sleep_for(1.0)

        engine.add_actor("spinner", "center", forever)
        engine.run(until=0.5)
        with pytest.raises(SnapshotError, match="spinner"):
            engine.snapshot()
        engine.close()

    def test_restore_rejects_foreign_blob(self):
        with pytest.raises(SnapshotError, match="does not hold"):
            s4u.Engine.restore(pickle.dumps({"not": "an engine"}))

    def test_snapshot_compacts_dead_timers(self):
        """Cancelled timers (e.g. the timeout of a wait that completed
        first) may hold unpicklable closures; lazy deletion only drops
        them from the heap *top*, so the snapshot path compacts first."""
        engine = _make_engine()
        engine.timers.schedule(1.0, _noop_timer)
        frame = (x for x in range(3))  # generators never pickle
        doomed = engine.timers.schedule(2.0, lambda: next(frame))
        doomed.cancel()  # dead, but buried below the pending timer
        assert len(engine.timers._heap) == 2
        blob = engine.snapshot()  # would raise without compaction
        assert len(engine.timers._heap) == 1
        restored = s4u.Engine.restore(blob)
        assert len(restored.timers) == 1
        engine.close()
        restored.close()


def _noop_timer():
    pass


class TestTimerQueueCompact:
    def test_compact_drops_only_dead_entries(self):
        queue = TimerQueue()
        fired = []
        keep = [queue.schedule(float(i), lambda i=i: fired.append(i))
                for i in range(5)]
        dead = [queue.schedule(float(i) + 0.5, lambda: fired.append(-1))
                for i in range(5)]
        for timer in dead:
            timer.cancel()
        assert queue.compact() == 5
        assert len(queue) == 5
        queue.fire_until(10.0)
        assert fired == [0, 1, 2, 3, 4]
        assert all(t.fired for t in keep)

    def test_compact_preserves_tie_break_order(self):
        queue = TimerQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append("a"))
        doomed = queue.schedule(1.0, lambda: fired.append("x"))
        queue.schedule(1.0, lambda: fired.append("b"))
        doomed.cancel()
        queue.compact()
        queue.fire_until(2.0)
        assert fired == ["a", "b"]


# ---------------------------------------------------------------------------
# SURF layer: mid-run deepcopy / pickle
# ---------------------------------------------------------------------------

def _surf_with_actions():
    surf = SurfEngine()
    cpu = surf.add_cpu("host", speed=1e9)
    fast = surf.add_link("fast", bandwidth=1e8, latency=1e-4)
    slow = surf.add_link("slow", bandwidth=1e6, latency=1e-3)
    surf.execute(cpu, 3e9)
    surf.execute(cpu, 1e9)
    surf.communicate([fast, slow], 5e6)
    surf.communicate([fast], 2e7)
    return surf


def _drain(surf):
    """Step to idle; returns the (time, #completed, #failed) trajectory."""
    trajectory = []
    while True:
        result = surf.step()
        if result is None:
            break
        trajectory.append((result.time, len(result.completed),
                           len(result.failed)))
    return trajectory


def _surf_with_periodic_traces():
    """Running actions on resources driven by *periodic* traces.

    Periodic trace iterators carry live cursor state (`_index`,
    `_cycle_offset`) inside the engine's trace heap; a snapshot taken
    mid-cycle must preserve that cursor exactly, otherwise the restored
    run replays or skips availability events and the dates diverge.
    """
    surf = SurfEngine()
    cpu = surf.add_cpu(
        "host", speed=1e9,
        availability_trace=Trace([(0.0, 1.0), (0.6, 0.5)], period=1.0,
                                 name="cpu-load"))
    link = surf.add_link(
        "wire", bandwidth=1e6, latency=0.0,
        bandwidth_trace=Trace([(0.3, 0.8)], period=0.7, name="bw"))
    surf.register_resource_traces(cpu)
    surf.register_resource_traces(link)
    surf.execute(cpu, 4e9)
    surf.communicate([link], 3e6)
    return surf


def _drain_actions(surf):
    """Step until no action runs (periodic traces tick forever, so the
    plain run-to-idle drain would never return)."""
    trajectory = []
    while surf.has_running_actions():
        result = surf.step()
        trajectory.append((result.time, len(result.completed),
                           len(result.failed)))
    return trajectory


class TestTraceHeapSnapshots:
    def test_periodic_trace_iterators_pickle_mid_cycle(self):
        surf = _surf_with_periodic_traces()
        for _ in range(5):      # land strictly inside a later cycle
            surf.step()
        assert surf.clock > 1.0 and surf._trace_heap
        clone = pickle.loads(pickle.dumps(surf))
        assert _drain_actions(clone) == _drain_actions(surf)
        assert clone.clock == surf.clock

    def test_deepcopy_mid_cycle_continues_identically(self):
        surf = _surf_with_periodic_traces()
        for _ in range(5):
            surf.step()
        clone = copy.deepcopy(surf)
        assert _drain_actions(clone) == _drain_actions(surf)

    def test_s4u_restore_mid_cycle_bit_identical(self):
        """Fork ≡ cold on a traced platform, snapshot taken mid-cycle."""

        def traced_pair():
            platform = Platform("traced-pair")
            platform.add_host(
                "a", 1e9,
                availability_trace=Trace([(0.0, 1.0), (0.6, 0.5)],
                                         period=1.3, name="load"))
            platform.add_host("b", 1e9)
            platform.add_link(
                "wire", 1e6, latency=0.0,
                bandwidth_trace=Trace([(0.4, 0.7)], period=0.9, name="bw"))
            platform.connect("a", "b", "wire")
            return s4u.Engine(platform)

        def warm(engine):
            def worker(actor):
                yield actor.execute(2.2e9)
            engine.add_actor("warm", "a", worker)
            return engine.run()

        def measured(engine):
            log = []

            def worker(actor):
                for k in range(2):
                    yield actor.execute(1.5e9)
                    yield engine.mailbox("out").put(k, size=2e6)
                    log.append((actor.now, f"put-{k}"))

            def sink(actor):
                for _ in range(2):
                    yield engine.mailbox("out").get()
                    log.append((actor.now, "got"))

            engine.add_actor("w", "a", worker)
            engine.add_actor("sink", "b", sink)
            log.append((engine.run(), "end"))
            return log

        cold = traced_pair()
        warm_date = warm(cold)
        # The warm phase must end strictly inside a trace cycle, or this
        # test stops guarding the iterator cursor.
        assert warm_date % 1.3 > 1e-9
        forked = traced_pair()
        warm(forked)
        blob = forked.snapshot()
        forked.close()
        restored = s4u.Engine.restore(blob)
        try:
            assert measured(restored) == measured(cold)
        finally:
            cold.close()
            restored.close()


class TestSurfMidRunCopies:
    def test_deepcopy_mid_run_continues_identically(self):
        surf = _surf_with_actions()
        surf.step()  # advance partially: actions now in flight
        clone = copy.deepcopy(surf)
        assert _drain(clone) == _drain(surf)
        assert clone.clock == surf.clock

    def test_pickle_mid_run_continues_identically(self):
        surf = _surf_with_actions()
        surf.step()
        clone = pickle.loads(pickle.dumps(surf))
        assert _drain(clone) == _drain(surf)

    def test_deepcopy_does_not_alias_state(self):
        surf = _surf_with_actions()
        clone = copy.deepcopy(surf)
        _drain(clone)
        # The original still sits at t=0 with everything to do.
        assert surf.clock == 0.0
        assert surf.has_running_actions()

    def test_maxmin_system_pickle_roundtrip_solves_identically(self):
        surf = _surf_with_actions()
        system = surf.cpu_model.system
        system.solve()
        restored = pickle.loads(pickle.dumps(system))
        assert ({v.id: v.value for v in restored.variables}
                == {v.id: v.value for v in system.variables})


# ---------------------------------------------------------------------------
# executor detach/reattach + shm hygiene
# ---------------------------------------------------------------------------

def _shm_segments():
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith("repro_lmm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestExecutorSnapshot:
    def test_pickle_detaches_pool_and_keeps_counters(self):
        executor = ParallelSolveExecutor(workers=2, min_components=1,
                                         min_work=1)
        executor.batches = 7
        executor.components_parallel = 21
        restored = pickle.loads(pickle.dumps(executor))
        assert restored.workers == 2
        assert restored.batches == 7
        assert restored.components_parallel == 21
        assert not restored._started  # pool re-forks lazily on first batch
        restored.close()
        executor.close()

    def test_no_shm_leak_across_snapshot_cycle(self):
        before = _shm_segments()
        engine = _make_engine(sharded=True)
        engine.surf.enable_parallel_solves(workers=2, min_components=1,
                                           min_work=1)
        _run_warm_phase(engine)
        blob = engine.snapshot()
        restored = s4u.Engine.restore(blob)
        _run_measured_phase(restored, seed=2)
        restored.close()
        engine.close()
        assert _shm_segments() == before


# ---------------------------------------------------------------------------
# cross-process restore
# ---------------------------------------------------------------------------

def _child_replay(blob, seed, conn):
    engine = s4u.Engine.restore(blob)
    try:
        conn.send(_run_measured_phase(engine, seed))
    finally:
        engine.close()
        conn.close()


class TestProcessRoundtrip:
    def test_blob_restores_in_another_process(self):
        engine = _make_engine()
        _run_warm_phase(engine)
        blob = engine.snapshot()
        engine.close()

        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child_replay, args=(blob, 9, child_conn),
                           daemon=True)
        proc.start()
        child_conn.close()
        child_result = parent_conn.recv()
        proc.join(timeout=30)
        parent_conn.close()
        assert child_result == _cold_run(seed=9)
