"""Fault-tolerance toolkit: retry policies, heartbeats, supervision trees.

Covers the PR-10 ``repro.ft`` package:

* :class:`RetryPolicy` — seeded backoff determinism, activity/blocking/
  plain-value factories, exhaustion into :class:`RetryError`, and the
  pickled-RNG contract (a restored policy continues the exact jitter
  stream);
* :class:`HeartbeatMonitor` — suspect/alive flips against a scripted
  outage, bounds on the detection delay, stale-seq accounting after an
  emitter reboot;
* :class:`Supervisor`/:class:`ChildSpec` — restart policies, the two
  strategies, bounded intensity with escalation, host-down parking,
  deadlines, nesting, and clean engine teardown;
* snapshot equivalence — a fleet supervised under pre-armed injector
  churn restores from ``engine.snapshot()`` with bit-identical events.
"""

import pickle

import pytest

from repro import s4u
from repro.exceptions import SimTimeoutError
from repro.ft import (
    ChildSpec,
    HeartbeatMonitor,
    RetryError,
    RetryPolicy,
    Supervisor,
)
from repro.platform import make_star
from repro.s4u import FailureInjector, this_actor


def star(num_hosts=3, **kwargs):
    kwargs.setdefault("host_speed", 1e9)
    kwargs.setdefault("link_latency", 1e-4)
    return make_star(num_hosts=num_hosts, **kwargs)


# -- module-level actor bodies (snapshot tests must pickle by reference) -------

def _finishing_worker(actor, log, flops):
    yield actor.execute(flops)
    log.append((actor.now, actor.name))


def _steady_worker(actor):
    while True:
        yield actor.sleep_for(0.5)


def _quitter(actor):
    yield actor.sleep_for(0.1)
    yield this_actor.exit()


def _one_shot(actor, log):
    yield actor.sleep_for(0.2)
    log.append((actor.now, actor.name))


def _churn_chaos(actor, host_name, down_at, up_at, until):
    yield actor.sleep_until(down_at)
    actor.engine.fail_host(actor.engine.host(host_name))
    yield actor.sleep_until(up_at)
    actor.engine.restore_host(actor.engine.host(host_name))
    if until > actor.now:
        yield actor.sleep_until(until)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)

    def test_backoff_is_seeded_and_deterministic(self):
        first = [RetryPolicy(seed=7).backoff(k) for k in (1, 2, 3, 4)]
        second = [RetryPolicy(seed=7).backoff(k) for k in (1, 2, 3, 4)]
        other = [RetryPolicy(seed=8).backoff(k) for k in (1, 2, 3, 4)]
        assert first == second
        assert first != other

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=0.35,
                             jitter=0.0)
        assert [policy.backoff(k) for k in (1, 2, 3)] == [0.1, 0.2, 0.35]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, factor=1.0, jitter=0.25,
                             seed=3)
        for attempt in range(1, 50):
            assert 0.75 <= policy.backoff(attempt) <= 1.25

    def test_pickled_policy_continues_the_jitter_stream(self):
        policy = RetryPolicy(seed=42)
        policy.backoff(1)
        clone = pickle.loads(pickle.dumps(policy))
        assert [policy.backoff(k) for k in (2, 3, 4)] == \
            [clone.backoff(k) for k in (2, 3, 4)]

    def test_retries_remote_exec_through_churn(self):
        def run_once():
            out = {}

            def worker(actor):
                remote = actor.engine.host("leaf-0")
                policy = RetryPolicy(max_attempts=5, base_delay=0.5,
                                     seed=42)
                yield from policy.run(lambda: actor.exec_async(2e9,
                                                               host=remote))
                out["done"] = actor.now
                out["counters"] = (policy.attempts, policy.retries,
                                   policy.giveups)

            engine = s4u.Engine(star(1))
            engine.add_actor("w", "center", worker)
            engine.add_actor("chaos", "center", _churn_chaos,
                             "leaf-0", 1.0, 1.5, 0.0)
            engine.run()
            return out

        first, second = run_once(), run_once()
        assert first == second
        assert first["counters"] == (2, 1, 0)
        assert first["done"] > 1.5  # finished after the outage

    def test_exhaustion_raises_retry_error_with_cause(self):
        out = {}

        def getter(actor):
            box = actor.engine.mailbox("never")
            policy = RetryPolicy(max_attempts=3, base_delay=0.2, seed=1)
            try:
                yield from policy.run(lambda: box.get(timeout=0.3))
            except RetryError as exc:
                out["cause"] = type(exc.__cause__)
                out["counters"] = (policy.attempts, policy.retries,
                                   policy.giveups)

        engine = s4u.Engine(star(1))
        engine.add_actor("g", "center", getter)
        engine.run()
        assert out["cause"] is SimTimeoutError
        assert out["counters"] == (3, 2, 1)

    def test_plain_value_factory_returns_immediately(self):
        out = {}

        def body(actor):
            policy = RetryPolicy(max_attempts=2)
            out["value"] = yield from policy.run(lambda: 41 + 1)
            out["attempts"] = policy.attempts

        engine = s4u.Engine(star(1))
        engine.add_actor("b", "center", body)
        engine.run()
        assert out == {"value": 42, "attempts": 1}

    def test_non_retryable_exception_propagates(self):
        out = {}

        def body(actor):
            policy = RetryPolicy(max_attempts=5)

            def factory():
                raise KeyError("not an activity failure")

            try:
                yield from policy.run(factory)
            except KeyError:
                out["attempts"] = policy.attempts

        engine = s4u.Engine(star(1))
        engine.add_actor("b", "center", body)
        engine.run()
        assert out == {"attempts": 1}


# ---------------------------------------------------------------------------
# HeartbeatMonitor
# ---------------------------------------------------------------------------

class TestHeartbeatMonitor:
    def test_parameter_validation(self):
        engine = s4u.Engine(star(2))
        with pytest.raises(ValueError):
            HeartbeatMonitor(engine, [], "center")
        with pytest.raises(ValueError):
            HeartbeatMonitor(engine, ["leaf-0"], "center",
                             period=0.5, timeout=0.6)
        with pytest.raises(ValueError):
            HeartbeatMonitor(engine, ["leaf-0"], "center", period=0.0)

    def test_outage_is_suspected_then_cleared(self):
        def run_once():
            engine = s4u.Engine(star(3))
            monitor = HeartbeatMonitor(
                engine, ["leaf-0", "leaf-1", "leaf-2"], "center",
                period=0.25, timeout=0.75).start()
            engine.add_actor("chaos", "center", _churn_chaos,
                             "leaf-1", 3.0, 6.0, 10.0)
            engine.run()
            return monitor

        monitor = run_once()
        assert [(kind, name) for _, kind, name in monitor.events] == [
            ("suspect", "leaf-1"), ("alive", "leaf-1")]
        suspect_at = monitor.events[0][0]
        alive_at = monitor.events[1][0]
        # Detection bound: within period + timeout of the down event,
        # recovery within a beat period (plus delivery) of the restore.
        assert 3.0 + 0.75 < suspect_at <= 3.0 + 0.75 + 0.25 + 0.05
        assert 6.0 <= alive_at <= 6.0 + 0.25 + 0.05
        assert not monitor.suspected
        assert monitor.is_suspected("leaf-1") is False
        # Bit-identical replay.
        assert run_once().events == monitor.events

    def test_rebooted_emitter_beats_are_stale_but_live(self):
        engine = s4u.Engine(star(1))
        monitor = HeartbeatMonitor(engine, ["leaf-0"], "center",
                                   period=0.25, timeout=0.75).start()
        engine.add_actor("chaos", "center", _churn_chaos,
                         "leaf-0", 2.0, 4.0, 8.0)
        engine.run()
        # The auto-restarted emitter resumed numbering at 0: at least one
        # beat arrived with a non-increasing sequence number.
        assert monitor.stale_beats >= 1
        assert monitor.beats > 0

    def test_live_host_is_never_suspected(self):
        engine = s4u.Engine(star(2))
        monitor = HeartbeatMonitor(engine, ["leaf-0", "leaf-1"], "center",
                                   period=0.25, timeout=0.75).start()
        engine.add_actor("hold", "center", _one_shot, [])
        engine.run(until=12.0)
        assert monitor.events == []


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------

class TestSupervisor:
    def test_parameter_validation(self):
        engine = s4u.Engine(star(1))
        spec = ChildSpec("w", "leaf-0", _steady_worker)
        with pytest.raises(ValueError):
            Supervisor(engine, [], host="center")
        with pytest.raises(ValueError):
            Supervisor(engine, [spec, spec], host="center")
        with pytest.raises(ValueError):
            Supervisor(engine, [spec], strategy="rest_for_one",
                       host="center")
        with pytest.raises(ValueError):
            ChildSpec("w", "leaf-0", _steady_worker, restart="sometimes")

    def test_transient_children_finish_and_tree_completes(self):
        log = []
        engine = s4u.Engine(star(3))
        sup = Supervisor(engine, [
            ChildSpec(f"w{i}", f"leaf-{i}", _finishing_worker, log,
                      1e9 * (i + 1), restart="transient")
            for i in range(3)], host="center").start()
        final = engine.run()
        assert [name for _, name in log] == ["w0", "w1", "w2"]
        assert sup.done and not sup.escalated and sup.restarts == 0
        assert final == pytest.approx(3.0)
        assert engine.actor_count() == 0

    def test_temporary_child_is_never_restarted(self):
        log = []
        engine = s4u.Engine(star(1))
        Supervisor(engine, [ChildSpec("once", "leaf-0", _one_shot, log,
                                      restart="temporary")],
                   host="center").start()
        engine.run()
        assert len(log) == 1

    def test_permanent_quitter_escalates_at_the_bound(self):
        engine = s4u.Engine(star(1))
        sup = Supervisor(engine, [ChildSpec("q", "leaf-0", _quitter)],
                         host="center", max_restarts=3, window=5.0).start()
        final = engine.run()
        assert sup.escalated
        assert sup.restarts == 3
        assert final == pytest.approx(0.4)  # 4 deaths, 0.1 s apart
        assert engine.actor_count() == 0
        kinds = [kind for _, kind, _ in sup.events]
        assert kinds == ["start", "restart", "restart", "restart",
                         "escalate"]

    def test_intensity_window_slides(self):
        # 1 restart per 0.08 s window: deaths 0.1 s apart always find the
        # previous token expired, so the quitter is restarted until the
        # deadline instead of escalating.
        engine = s4u.Engine(star(1))
        sup = Supervisor(engine, [ChildSpec("q", "leaf-0", _quitter)],
                         host="center", max_restarts=1, window=0.08,
                         deadline=2.0).start()
        engine.run()
        assert not sup.escalated
        assert sup.timed_out
        assert sup.restarts >= 10

    def test_all_for_one_takes_siblings_down(self):
        engine = s4u.Engine(star(2))
        sup = Supervisor(engine, [ChildSpec("q", "leaf-0", _quitter),
                                  ChildSpec("s", "leaf-1", _steady_worker)],
                         strategy="all_for_one", host="center",
                         max_restarts=2, window=10.0).start()
        engine.run()
        assert sup.escalated
        restarted = [name for _, kind, name in sup.events
                     if kind == "restart"]
        # Every cycle restarts both children, in declaration order.
        assert restarted == ["q", "s", "q", "s"]

    def test_one_for_one_leaves_siblings_alone(self):
        engine = s4u.Engine(star(2))
        sup = Supervisor(engine, [ChildSpec("q", "leaf-0", _quitter),
                                  ChildSpec("s", "leaf-1", _steady_worker)],
                         strategy="one_for_one", host="center",
                         max_restarts=2, window=10.0).start()
        engine.run()
        assert sup.escalated
        restarted = [name for _, kind, name in sup.events
                     if kind == "restart"]
        assert restarted == ["q", "q"]

    def test_host_churn_parks_and_respawns_without_tokens(self):
        log = []
        engine = s4u.Engine(star(1))
        # max_restarts=0: any token spent would escalate immediately —
        # host-driven deaths must not spend any.
        sup = Supervisor(engine, [ChildSpec("w", "leaf-0",
                                            _finishing_worker, log, 4e9,
                                            restart="transient")],
                         host="center", max_restarts=0,
                         deadline=30.0).start()
        engine.add_actor("chaos", "center", _churn_chaos,
                         "leaf-0", 1.0, 2.5, 0.0)
        engine.run()
        assert not sup.escalated
        assert [kind for _, kind, _ in sup.events][:3] == [
            "start", "park", "restart"]
        assert sup.events[1][0] == pytest.approx(1.0)   # parked at kill
        assert sup.events[2][0] == pytest.approx(2.5)   # respawned on up
        # The fresh body recomputes from scratch: 2.5 + 4 s of work.
        assert log and log[0][0] == pytest.approx(6.5)

    def test_deadline_stops_permanent_children(self):
        engine = s4u.Engine(star(2))
        sup = Supervisor(engine, [ChildSpec("a", "leaf-0", _steady_worker),
                                  ChildSpec("b", "leaf-1", _steady_worker)],
                         host="center", deadline=3.0).start()
        final = engine.run()
        assert sup.timed_out and sup.done
        assert final == pytest.approx(3.0)
        assert engine.actor_count() == 0

    def test_stop_from_an_actor_shuts_the_tree_down(self):
        engine = s4u.Engine(star(1))
        sup = Supervisor(engine, [ChildSpec("s", "leaf-0", _steady_worker)],
                         host="center").start()

        def stopper(actor):
            yield actor.sleep_for(1.25)
            sup.stop()

        engine.add_actor("stopper", "center", stopper, daemon=True)
        final = engine.run()
        assert sup.done and not sup.escalated and not sup.timed_out
        assert final == pytest.approx(1.25)

    def test_escalated_subtree_is_restarted_by_parent(self):
        engine = s4u.Engine(star(2))
        sub = Supervisor(engine, [ChildSpec("q", "leaf-0", _quitter)],
                         name="sub", host="leaf-1", max_restarts=1,
                         window=10.0, daemon=True)
        parent = Supervisor(engine, [sub.as_child(restart="transient")],
                            name="parent", host="center", max_restarts=2,
                            window=10.0).start()
        engine.run()
        # The subtree escalates (dies failed), the parent restarts it
        # twice, then trips its own bound and escalates too.
        assert sub.escalated
        assert parent.escalated
        assert [name for _, kind, name in parent.events
                if kind == "restart"] == ["sub", "sub"]
        assert engine.actor_count() == 0

    def test_teardown_does_not_respawn_children(self):
        # A daemon supervisor's permanent children are reaped when the
        # last non-daemon actor finishes; the tearing-down guard must
        # keep the supervisor from respawning them forever.
        log = []
        engine = s4u.Engine(star(2))
        Supervisor(engine, [ChildSpec("s", "leaf-0", _steady_worker)],
                   host="center", daemon=True).start()
        engine.add_actor("main", "leaf-1", _one_shot, log)
        final = engine.run()
        assert final == pytest.approx(0.2)
        assert engine.actor_count() == 0

    def test_supervised_churn_fleet_is_deterministic(self):
        def run_once():
            log = []
            engine = s4u.Engine(star(4))
            sup = Supervisor(engine, [
                ChildSpec(f"w{i}", f"leaf-{i}", _finishing_worker, log,
                          3e9, restart="transient") for i in range(4)],
                host="center", max_restarts=50, window=100.0,
                deadline=60.0).start()
            FailureInjector(engine, seed=9,
                            hosts=[f"leaf-{i}" for i in range(4)],
                            mtbf=1.5, mean_downtime=0.4,
                            max_failures=6).start()
            final = engine.run()
            return sup.events, sorted(log), final

        first, second = run_once(), run_once()
        assert first == second
        events, log, final = first
        assert len(log) == 4           # every worker finished eventually
        assert any(kind in ("park", "restart") for _, kind, _ in events)


# ---------------------------------------------------------------------------
# snapshot equivalence
# ---------------------------------------------------------------------------

def _supervised_phase(engine):
    """Identical supervised fleet added to a (restored) engine."""
    log = []
    sup = Supervisor(engine, [
        ChildSpec(f"w{i}", f"leaf-{i}", _finishing_worker, log, 2e9,
                  restart="transient") for i in range(3)],
        host="center", max_restarts=50, window=100.0,
        deadline=40.0).start()
    final = engine.run()
    return sup.events, sorted(log), final


class TestFtSnapshot:
    def test_supervised_fleet_forks_bit_identically_mid_churn(self):
        engine = s4u.Engine(star(3))
        # Churn armed *before* the snapshot: the injector's pending pulse
        # timers (seeded RNG state included) travel in the blob.
        FailureInjector(engine, seed=21,
                        hosts=[f"leaf-{i}" for i in range(3)],
                        mtbf=1.0, mean_downtime=0.5,
                        max_failures=5).start()
        blob = engine.snapshot()
        cold = _supervised_phase(engine)
        forked = _supervised_phase(s4u.Engine.restore(blob))
        assert forked == cold
        events, log, final = cold
        assert len(log) == 3
        assert any(kind in ("park", "restart") for _, kind, _ in events)
