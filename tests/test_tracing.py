"""Tests for the tracing layer: recorder, Gantt chart, exports."""

import pytest

from repro import Recorder, GanttChart
from repro.platform import Platform
from repro.s4u import Engine
from repro.tracing import intervals_to_csv, render_ascii_gantt
from repro.tracing.recorder import Interval


class TestRecorder:
    def test_record_and_query(self):
        recorder = Recorder()
        recorder.record_interval("h1", "compute", 0.0, 2.0, "job")
        recorder.record_interval("h1", "comm-send", 2.0, 3.0, "msg")
        recorder.record_interval("h2", "compute", 1.0, 4.0, "job2")
        assert recorder.rows() == ["h1", "h2"]
        assert len(recorder.by_row("h1")) == 2
        assert recorder.total_time("h1") == pytest.approx(3.0)
        assert recorder.total_time("h1", "compute") == pytest.approx(2.0)
        assert recorder.makespan() == pytest.approx(4.0)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(row="h", category="c", start=2.0, end=1.0)

    def test_clear(self):
        recorder = Recorder()
        recorder.record_interval("h", "compute", 0, 1)
        recorder.record_event("h", "mark", 0.5)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.makespan() == 0.0


class TestGanttChart:
    def _simulate(self):
        platform = Platform("p")
        platform.add_host("client", 1e8)
        platform.add_host("server", 1e8)
        platform.add_link("net", 1e6, 0.001)
        platform.connect("client", "server", "net")
        recorder = Recorder()
        engine = Engine(platform, recorder=recorder)

        def client(actor):
            yield actor.engine.mailbox("server-inbox").put("request", size=2e6)
            yield actor.execute(2e8)
            yield actor.engine.mailbox("client-inbox").get()

        def server(actor):
            yield actor.engine.mailbox("server-inbox").get()
            yield actor.execute(3e8)
            yield actor.engine.mailbox("client-inbox").put("reply", size=1e5)

        engine.add_actor("client", "client", client)
        engine.add_actor("server", "server", server)
        engine.run()
        return recorder

    def test_simulation_records_compute_and_comm_intervals(self):
        recorder = self._simulate()
        chart = GanttChart(recorder)
        summary = chart.summary()
        assert summary["client"]["compute"] == pytest.approx(2.0)
        assert summary["server"]["compute"] == pytest.approx(3.0)
        assert summary["client"]["comm"] > 0
        assert summary["server"]["comm"] > 0
        # busy + idle == horizon for each row
        for totals in summary.values():
            assert totals["idle"] >= 0

    def test_row_lookup_and_missing_row(self):
        recorder = self._simulate()
        chart = GanttChart(recorder)
        assert chart.row("client").name == "client"
        with pytest.raises(KeyError):
            chart.row("ghost")

    def test_overlapping_comms_counted(self):
        recorder = Recorder()
        recorder.record_interval("a", "comm-send", 0.0, 2.0)
        recorder.record_interval("b", "comm-send", 1.0, 3.0)
        recorder.record_interval("c", "comm-send", 5.0, 6.0)
        chart = GanttChart(recorder)
        assert chart.overlapping_comms() == 1

    def test_explicit_row_order(self):
        recorder = self._simulate()
        chart = GanttChart(recorder, rows=["server", "client"])
        assert [row.name for row in chart.rows] == ["server", "client"]


class TestExports:
    def test_csv_export_contains_all_intervals(self):
        recorder = Recorder()
        recorder.record_interval("h1", "compute", 0.0, 1.5, "phase,one")
        recorder.record_interval("h2", "comm-send", 0.5, 2.0, "msg")
        csv_text = intervals_to_csv(recorder)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "row,category,start,end,label"
        assert len(lines) == 3
        assert "phase;one" in csv_text          # commas escaped

    def test_ascii_gantt_renders_rows_and_marks(self):
        recorder = Recorder()
        recorder.record_interval("alpha", "compute", 0.0, 5.0)
        recorder.record_interval("alpha", "comm-send", 5.0, 10.0)
        recorder.record_interval("beta", "comm-recv", 0.0, 10.0)
        chart = GanttChart(recorder)
        art = render_ascii_gantt(chart, width=20)
        lines = art.splitlines()
        assert lines[0].startswith("alpha")
        assert "#" in lines[0] and "-" in lines[0]
        assert "-" in lines[1]
        assert "#" not in lines[1]

    def test_ascii_gantt_empty_recorder(self):
        chart = GanttChart(Recorder())
        assert render_ascii_gantt(chart) == ""
