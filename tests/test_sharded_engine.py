"""Zone-partitioned (sharded) engine ≡ flat engine, date for date.

The PR-7 partitioned kernel runs one pair of fluid models per top-level
:class:`~repro.platform.routing.NetZone` and merges their share/update
phases under a conservative window.  Every simulated date it pins must
be *bit-identical* to the flat single-model kernel — including under
failure-injection churn whose victims sit on cross-zone routes, and
with the parallel solve executor enabled on top.
"""

import pytest

from repro import s4u
from repro.exceptions import TransferFailureError
from repro.platform import Platform, make_zoned_grid
from repro.s4u import FailureInjector
from repro.surf.trace import Trace


def zoned_platform():
    return make_zoned_grid(num_sites=3, hosts_per_site=4)


def run_exchange_workload(platform=None, sharded=False, engine=None):
    """Mixed intra-/cross-site execs and transfers; returns the event log."""
    if engine is None:
        engine = s4u.Engine(platform or zoned_platform(), sharded=sharded)
    log = []

    # (sender, receiver) pairs: two stay inside a site, two cross sites,
    # and the two cross-site pairs share the wan-1 link so cross-zone
    # contention lands in one migrated component.
    pairs = [
        ("site-0-host-1", "site-0-host-2"),
        ("site-0-host-3", "site-1-host-1"),
        ("site-1-host-2", "site-2-host-2"),
        ("site-2-host-3", "site-2-host-1"),
    ]

    def sender(actor, i, dst):
        yield actor.execute(2e8 * (i + 1))
        log.append((actor.now, f"sent-{i}"))
        yield actor.engine.mailbox(f"m{i}").put(i, size=5e5 * (i + 1))
        log.append((actor.now, f"put-{i}"))

    def receiver(actor, i):
        yield actor.engine.mailbox(f"m{i}").get()
        log.append((actor.now, f"got-{i}"))
        yield actor.execute(1e8)
        log.append((actor.now, f"done-{i}"))

    for i, (src, dst) in enumerate(pairs):
        engine.add_actor(f"s{i}", src, sender, i, dst)
        engine.add_actor(f"r{i}", dst, receiver, i)
    log.append((engine.run(), "end"))
    return log, engine


def run_churn_workload(sharded=False):
    """Cross-zone fan-in under seeded host/link churn; returns the log."""
    engine = s4u.Engine(zoned_platform(), sharded=sharded)
    log = []
    want = [25]

    def sink(actor):
        box = actor.engine.mailbox("sink")
        while want[0] > 0:
            try:
                payload = yield box.get()
            except TransferFailureError:
                continue
            want[0] -= 1
            log.append((actor.now, f"recv-{payload}"))

    def worker(actor, i):
        while True:
            yield actor.execute(5e6 * (1 + i % 3))
            try:
                yield actor.engine.mailbox("sink").put(i, size=2e4)
            except TransferFailureError:
                continue

    engine.add_actor("sink", "site-0-host-0", sink)
    hosts = [f"site-{s}-host-{h}" for s in (1, 2) for h in range(4)]
    for i, host in enumerate(hosts):
        engine.add_actor(f"w{i}", host, worker, i,
                         daemon=True, auto_restart=True)
    # Churn the wan links (cross-zone routes) and two worker hosts: the
    # failures tear components that straddle zone boundaries.
    FailureInjector(engine, seed=11,
                    hosts=["site-1-host-1", "site-2-host-2"],
                    links=["wan-1", "wan-2"],
                    mtbf=0.01, mean_downtime=0.02,
                    max_failures=20).start()
    log.append((engine.run(), "end"))
    assert want[0] == 0
    return log, engine


def work_counters(engine):
    solver = engine.kernel_stats()["solver"]
    return {key: solver[key] for key in
            ("constraints_solved", "variables_solved",
             "elements_visited", "heap_pops")}


class TestShardedEquivalence:
    def test_exchange_dates_bit_identical(self):
        flat_log, flat_engine = run_exchange_workload(sharded=False)
        shard_log, shard_engine = run_exchange_workload(sharded=True)
        assert shard_log == flat_log
        stats = shard_engine.kernel_stats()
        assert stats["shards"]["count"] == 4  # root + 3 sites
        assert stats["shards"]["migrations"] > 0
        # identical actual solver work, only spread across more models
        assert work_counters(shard_engine) == work_counters(flat_engine)

    def test_churn_crossing_zone_boundaries_bit_identical(self):
        flat_log, _ = run_churn_workload(sharded=False)
        shard_log, shard_engine = run_churn_workload(sharded=True)
        assert shard_log == flat_log
        assert shard_engine.kernel_stats()["shards"]["migrations"] > 0

    def test_parallel_solves_on_sharded_engine_bit_identical(self):
        flat_log, _ = run_exchange_workload(sharded=False)
        engine = s4u.Engine(zoned_platform(), sharded=True)
        # Force tiny thresholds so even this small run crosses the
        # worker pool; production thresholds would keep it in-process.
        engine.surf.enable_parallel_solves(workers=2, min_components=1,
                                           min_work=1)
        try:
            shard_log, _ = run_exchange_workload(engine=engine)
        finally:
            engine.close()
        assert shard_log == flat_log


def traced_zoned_platform():
    """Two sites with phase-shifted availability dips and a WAN bw trace.

    The zone generators don't take traces, so this builds the tree by
    hand: each host carries a periodic availability trace whose dip lands
    at a different phase, and the cross-zone WAN links carry bandwidth
    traces — every shard sees trace events, and cross-zone transfers see
    them from two shards at once.
    """
    platform = Platform("traced-grid")
    hub = platform.add_router("wan-hub")
    for s in range(2):
        site = platform.add_zone(f"site-{s}", routing="Floyd")
        gw = site.add_router(f"site-{s}-gw")
        for i in range(2):
            phase = 0.5 + 0.4 * (2 * s + i)
            trace = Trace([(0.0, 1.0), (phase, 0.5), (phase + 0.5, 0.9)],
                          period=3.0, name=f"load-{s}-{i}")
            host = site.add_host(f"site-{s}-host-{i}", 1e9,
                                 availability_trace=trace)
            link = platform.add_link(f"site-{s}-lan-{i}", 125e6, 100e-6)
            site.connect(host.name, gw, link.name)
        platform.add_link(f"wan-{s}", 12.5e6, 50e-3,
                          bandwidth_trace=Trace([(0.0, 1.0), (0.7, 0.6)],
                                                period=2.0,
                                                name=f"wan-bw-{s}"))
        platform.connect(hub, site.name, f"wan-{s}")
    return platform


def run_modulated_workload(sharded=False, engine=None):
    """Execs + cross-site transfers spanning dips, plus a set_speed."""
    if engine is None:
        engine = s4u.Engine(traced_zoned_platform(), sharded=sharded)
    log = []
    engine.on_resource_speed_change(
        lambda resource, speed: log.append(
            (engine.now, f"speed:{resource.name}", speed)))

    pairs = [("site-0-host-0", "site-1-host-1"),
             ("site-1-host-0", "site-0-host-1")]

    def sender(actor, i):
        for k in range(3):
            yield actor.execute(4e8 * (1 + i))
            yield actor.engine.mailbox(f"m{i}").put(k, size=3e6)
            log.append((actor.now, f"put-{i}-{k}"))

    def receiver(actor, i):
        for k in range(3):
            yield actor.engine.mailbox(f"m{i}").get()
            log.append((actor.now, f"got-{i}-{k}"))

    def admin(actor):
        # A runtime speed change layered on top of the trace dips: the
        # write path must compose with availability on every kernel.
        yield s4u.this_actor.sleep_for(1.2)
        actor.engine.host_by_name("site-0-host-0").set_speed(7e8)

    for i, (src, dst) in enumerate(pairs):
        engine.add_actor(f"s{i}", src, sender, i)
        engine.add_actor(f"r{i}", dst, receiver, i)
    engine.add_actor("admin", "site-1-host-0", admin)
    log.append((engine.run(), "end"))
    return log, engine


class TestAvailabilityModulationEquivalence:
    def test_trace_dips_flat_vs_sharded_bit_identical(self):
        flat_log, flat_engine = run_modulated_workload(sharded=False)
        shard_log, shard_engine = run_modulated_workload(sharded=True)
        assert shard_log == flat_log
        assert shard_engine.kernel_stats()["shards"]["count"] == 3
        assert work_counters(shard_engine) == work_counters(flat_engine)
        # The dips actually fired (observer saw trace + set_speed events).
        assert any(entry[1].startswith("speed:") for entry in flat_log)

    def test_trace_dips_parallel_solves_bit_identical(self):
        flat_log, _ = run_modulated_workload(sharded=False)
        engine = s4u.Engine(traced_zoned_platform(), sharded=True)
        engine.surf.enable_parallel_solves(workers=2, min_components=1,
                                           min_work=1)
        try:
            shard_log, _ = run_modulated_workload(engine=engine)
        finally:
            engine.close()
        assert shard_log == flat_log


class TestLazyRealization:
    def test_lazy_matches_eager_dates(self):
        eager = zoned_platform()
        eager.realize(eager=True)
        eager_log, _ = run_exchange_workload(platform=eager)
        lazy_log, _ = run_exchange_workload()  # lazy is the default
        assert lazy_log == eager_log

    def test_lazy_sharded_matches_eager_flat(self):
        eager = zoned_platform()
        eager.realize(eager=True)
        eager_log, _ = run_exchange_workload(platform=eager)
        shard_log, _ = run_exchange_workload(sharded=True)
        assert shard_log == eager_log


class TestShardStats:
    def test_kernel_stats_shape(self):
        _, engine = run_exchange_workload(sharded=True)
        stats = engine.kernel_stats()
        assert stats["shards"]["names"][0] == "<root>"
        assert set(stats["shards"]["names"][1:]) == \
            {"site-0", "site-1", "site-2"}
        assert "window" in stats and "route_caches" in stats

    def test_flat_engine_has_no_shard_block(self):
        _, engine = run_exchange_workload(sharded=False)
        assert "shards" not in engine.kernel_stats()
