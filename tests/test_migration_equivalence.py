"""Simulated-date equivalence pins for the MSG→s4u port of GRAS/SMPI/AMOK.

Every date below was captured by running the *same* scenario on the
pre-port implementation (GRAS/SMPI/AMOK going through the MSG compat shim,
commit `a318711`) and is asserted to the bit on the ported, s4u-native
implementation.  A change to any of these numbers means the port altered
the simulation semantics, not just the plumbing.

The file also covers the s4u primitives the port introduced
(``Comm.detach``, mailbox probe/peek, the SMPI ``Request``
wait/test/waitany machinery) and pins the workload that once
cross-checked the (since removed) MSG compatibility shim.
"""

import pytest

from repro import ActivitySet, Engine
from repro.amok import BandwidthMeter, SaturationExperiment
from repro.exceptions import SimTimeoutError
from repro.gras import SimWorld
from repro.platform import make_cluster, make_dumbbell, make_star, \
    make_two_site_grid
from repro.smpi import ANY_SOURCE, MPI_BYTE, SmpiWorld
from repro.s4u import this_actor

REL = 1e-9


# ---------------------------------------------------------------------------------
# GRAS: typed request/reply exchange through the sim backend
# ---------------------------------------------------------------------------------
class TestGrasDates:
    def test_request_reply_dates_match_pre_port(self):
        world = SimWorld(make_star(num_hosts=2, link_bandwidth=1.25e6,
                                   link_latency=1e-3))
        dates = {}

        def server(proc):
            proc.msgtype_declare("req", "int")
            proc.msgtype_declare("rep", "double")
            proc.socket_server(4000)
            for _ in range(3):
                src, payload = proc.msg_wait(60.0, "req")
                proc.msg_send(proc.socket_client(src.host, src.port), "rep",
                              float(payload) * 2.0)
            dates["server_done"] = proc.os_time()

        def client(proc):
            proc.msgtype_declare("req", "int")
            proc.msgtype_declare("rep", "double")
            proc.socket_server(4001)
            sock = proc.socket_client("leaf-0", 4000)
            for i in range(3):
                proc.msg_send(sock, "req", i + 1)
                _, value = proc.msg_wait(60.0, "rep")
                dates[f"reply_{i}"] = (proc.os_time(), value)

        world.add_process("server", "leaf-0", server)
        world.add_process("client", "leaf-1", client)
        final = world.run()

        assert dates["reply_0"][0] == pytest.approx(0.0040912, rel=REL)
        assert dates["reply_1"][0] == pytest.approx(0.0081824, rel=REL)
        assert dates["reply_2"][0] == pytest.approx(0.0122736, rel=REL)
        assert [dates[f"reply_{i}"][1] for i in range(3)] == [2.0, 4.0, 6.0]
        assert dates["server_done"] == pytest.approx(0.0122736, rel=REL)
        assert final == pytest.approx(0.0122736, rel=REL)


# ---------------------------------------------------------------------------------
# SMPI: p2p + collectives on a cluster and across a WAN
# ---------------------------------------------------------------------------------
def _smpi_mixed_program(dates):
    import numpy as np

    def program(mpi):
        comm = mpi.COMM_WORLD
        data = np.zeros(500_000, dtype="u1")
        if comm.rank == 0:
            comm.send(data, dest=1, tag=3)
        elif comm.rank == 1:
            comm.recv(source=0, tag=3)
            dates["recv_done"] = mpi.wtime()
        comm.barrier()
        dates[f"barrier_{comm.rank}"] = mpi.wtime()
        total = comm.allreduce(comm.rank)
        value = comm.bcast(np.ones(100_000, dtype="u1") if comm.rank == 2
                           else None, root=2)
        gathered = comm.gather(comm.rank * 2, root=0)
        dates[f"done_{comm.rank}"] = (mpi.wtime(), total, len(value),
                                      gathered if comm.rank == 0 else None)

    return program


class TestSmpiDates:
    def test_cluster_dates_match_pre_port(self):
        dates = {}
        world = SmpiWorld(make_cluster(num_hosts=4), num_ranks=4)
        final = world.run(_smpi_mixed_program(dates))

        assert dates["recv_done"] == pytest.approx(0.004600064, rel=REL)
        assert dates["barrier_0"] == pytest.approx(0.005200128, rel=REL)
        assert dates["barrier_1"] == pytest.approx(0.005800256, rel=REL)
        assert dates["barrier_2"] == pytest.approx(0.005800256, rel=REL)
        assert dates["barrier_3"] == pytest.approx(0.00640032, rel=REL)
        assert dates["done_0"][0] == pytest.approx(0.011800768, rel=REL)
        assert dates["done_2"][0] == pytest.approx(0.008200576, rel=REL)
        assert dates["done_3"][0] == pytest.approx(0.010400704, rel=REL)
        # values, not just dates: allreduce total, bcast length, gather
        assert dates["done_0"][1:] == (6, 100000, [0, 2, 4, 6])
        assert final == pytest.approx(0.011800768, rel=REL)

    def test_wan_grid_dates_match_pre_port(self):
        dates = {}
        world = SmpiWorld(make_two_site_grid(hosts_per_site=2,
                                             wan_bandwidth=1.25e6,
                                             wan_latency=50e-3),
                          num_ranks=4)
        final = world.run(_smpi_mixed_program(dates))

        assert dates["recv_done"] == pytest.approx(0.0042, rel=REL)
        assert dates["barrier_0"] == pytest.approx(0.050606528, rel=REL)
        assert dates["barrier_2"] == pytest.approx(0.100812928, rel=REL)
        assert dates["done_0"][0] == pytest.approx(0.43243872, rel=REL)
        assert dates["done_0"][1:] == (6, 100000, [0, 2, 4, 6])
        assert final == pytest.approx(0.43243872, rel=REL)

    def test_isend_irecv_dates_match_pre_port(self):
        """Eager isend completes at deposit; irecv is posted lazily at wait."""
        import numpy as np
        dates = {}
        world = SmpiWorld(make_cluster(num_hosts=2), num_ranks=2)

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                req = comm.isend(np.zeros(2_000_000, dtype="u1"), dest=1,
                                 tag=1)
                comm.wait(req)
                dates["send_wait"] = mpi.wtime()
            else:
                req = comm.irecv(source=0, tag=1)
                mpi.compute(1e9)
                comm.wait(req)
                dates["recv_wait"] = mpi.wtime()

        final = world.run(program)
        assert dates["send_wait"] == 0.0       # eager: already deposited
        assert dates["recv_wait"] == pytest.approx(1.0166, rel=REL)
        assert final == pytest.approx(1.0166, rel=REL)


# ---------------------------------------------------------------------------------
# AMOK: saturation interference + bandwidth meter
# ---------------------------------------------------------------------------------
class TestAmokDates:
    def test_saturation_bandwidths_match_pre_port(self):
        result = SaturationExperiment().run(
            lambda: make_dumbbell(num_left=2, num_right=2),
            measured_pair=("left-0", "right-0"),
            saturating_pair=("left-1", "right-1"))
        assert result.baseline_bandwidth == pytest.approx(12315270.93596059,
                                                          rel=REL)
        assert result.saturated_bandwidth == pytest.approx(6203473.945409429,
                                                           rel=REL)
        assert result.interference_ratio == pytest.approx(0.5037220843672456,
                                                          rel=REL)
        assert result.shares_bottleneck

    def test_bandwidth_meter_matches_pre_port(self):
        world = SimWorld(make_star(num_hosts=2, link_bandwidth=1.25e6,
                                   link_latency=1e-3))
        meter = BandwidthMeter(payload_bytes=2_000_000)
        res = {}

        def source(proc):
            res["m"] = meter.measure(proc, "leaf-1", 6100, reply_port=6101)
            meter.stop_sink(proc, "leaf-1", 6100)

        def sink(proc):
            meter.sink(proc, 6100)

        world.add_process("sink", "leaf-1", sink)
        world.add_process("source", "leaf-0", source)
        final = world.run()

        measurement = res["m"]
        assert final == pytest.approx(1.6102688, rel=REL)
        assert measurement.latency == pytest.approx(0.0020536, rel=REL)
        assert measurement.bandwidth == pytest.approx(1249997.5000049998,
                                                      rel=REL)
        assert measurement.probe_rtt == pytest.approx(0.0041072, rel=REL)
        assert measurement.payload_duration == pytest.approx(1.6041104,
                                                             rel=REL)


# ---------------------------------------------------------------------------------
# The workload that once validated the MSG shim, pinned on s4u
# ---------------------------------------------------------------------------------
class TestPinnedShimWorkload:
    def test_ping_then_compute_final_time_is_pinned(self):
        """The shim-equivalence workload's date, pinned since the shim left."""
        engine = Engine(make_star(num_hosts=2))

        def sender(actor):
            yield actor.engine.mailbox("box").put("ping", size=1e6)

        def receiver(actor):
            yield actor.engine.mailbox("box").get()
            yield actor.execute(1e9)

        engine.add_actor("sender", "leaf-0", sender)
        engine.add_actor("receiver", "leaf-1", receiver)
        assert engine.run() == pytest.approx(1.09, abs=0, rel=0)


# ---------------------------------------------------------------------------------
# The s4u primitives the port introduced
# ---------------------------------------------------------------------------------
class TestPortPrimitives:
    def test_comm_detach_lets_sender_die_before_delivery(self):
        engine = Engine(make_star(num_hosts=2))
        got = []

        def sender(actor):
            comm = yield engine.mailbox("d").put_async("fire", size=1e6)
            comm.detach()          # do not wait: terminate immediately

        def receiver(actor):
            yield actor.sleep_for(0.5)
            got.append((yield engine.mailbox("d").get()))

        engine.add_actor("sender", "leaf-0", sender)
        engine.add_actor("receiver", "leaf-1", receiver)
        engine.run()
        assert got == ["fire"]

    def test_mailbox_listen_and_peek(self):
        engine = Engine(make_star(num_hosts=2))
        seen = {}

        def sender(actor):
            yield engine.mailbox("probe").put_async("hello", size=1.0,
                                                    detached=True)
            yield actor.sleep_for(1.0)

        def prober(actor):
            box = engine.mailbox("probe")
            seen["before"] = (box.listen(), box.peek_payload())
            yield actor.sleep_for(0.1)
            seen["pending"] = (box.listen(), box.peek_payload())
            seen["payload"] = yield box.get()
            seen["after"] = (box.listen(), box.peek_payload())

        engine.add_actor("prober", "leaf-1", prober)
        engine.add_actor("sender", "leaf-0", sender)
        engine.run()
        assert seen["before"] == (False, None)
        assert seen["pending"] == (True, "hello")
        assert seen["payload"] == "hello"
        assert seen["after"] == (False, None)

    def test_this_actor_engine_and_mailbox_helpers(self):
        engine = Engine(make_star(num_hosts=2))
        seen = {}

        def sender(actor):
            yield this_actor.mailbox("ta").put("via-helper", size=1.0)

        def receiver(actor):
            seen["engine"] = this_actor.get_engine() is engine
            seen["value"] = yield this_actor.mailbox("ta").get()

        engine.add_actor("sender", "leaf-0", sender)
        engine.add_actor("receiver", "leaf-1", receiver)
        engine.run()
        assert seen == {"engine": True, "value": "via-helper"}

    def test_smpi_request_test_and_waitany(self):
        world = SmpiWorld(make_cluster(num_hosts=3), num_ranks=3)
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                comm.send("late", dest=2, tag=7, count=1_000_000,
                          datatype=MPI_BYTE)
            elif comm.rank == 1:
                comm.send("early", dest=2, tag=8, count=10,
                          datatype=MPI_BYTE)
            else:
                late = comm.irecv(source=0, tag=7)
                early = comm.irecv(source=1, tag=8)
                assert not comm.test(late)     # nothing arrived yet
                index, value = comm.waitany([late, early])
                results["first"] = (index, value)
                index, value = comm.waitany([late, early])
                results["second"] = (index, value)
                assert comm.test(late) and comm.test(early)

        world.run(program)
        # mailbox matching is rendezvous-FIFO: rank 0 deposited first, so
        # its 1 MB message is matched (and fully received) first even
        # though the tag-8 message is tiny — the pre-port behaviour.
        assert results["first"] == (0, "late")
        assert results["second"] == (1, "early")

    def test_smpi_waitany_mixed_send_and_recv(self):
        world = SmpiWorld(make_cluster(num_hosts=2), num_ranks=2)
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                send_req = comm.isend("payload", dest=1, tag=1)
                recv_req = comm.irecv(source=1, tag=2)
                index, _ = comm.waitany([send_req, recv_req])
                results["first_done"] = index   # eager send: already done
                _, value = comm.waitany([recv_req])
                results["echo"] = value
            else:
                value = comm.recv(source=0, tag=1)
                comm.send(value.upper(), dest=0, tag=2)

        world.run(program)
        assert results["first_done"] == 0
        assert results["echo"] == "PAYLOAD"

    def test_smpi_iprobe_and_unexpected_queue(self):
        world = SmpiWorld(make_cluster(num_hosts=2), num_ranks=2)
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                comm.send("x", dest=1, tag=4)
            else:
                # wait until the eager message is parked on the mailbox
                while not comm.iprobe(source=0, tag=4):
                    mpi.compute(1e6)
                results["probed"] = True
                assert not comm.iprobe(source=0, tag=99)
                results["value"] = comm.recv(source=0, tag=4)

        world.run(program)
        assert results == {"probed": True, "value": "x"}

    def test_smpi_issend_completes_at_reception(self):
        """Synchronous-mode send: the request is a live comm future."""
        world = SmpiWorld(make_cluster(num_hosts=2), num_ranks=2)
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                req = comm.issend("sync", dest=1, tag=1, count=1_000_000,
                                  datatype=MPI_BYTE)
                assert not req.completed
                assert not comm.test(req)      # receiver sleeps first
                comm.wait(req)
                results["send_done_at"] = mpi.wtime()
            else:
                mpi.compute(1e9)               # 1 s before receiving
                comm.recv(source=0, tag=1)
                results["recv_done_at"] = mpi.wtime()

        world.run(program)
        # unlike eager isend, the issend completes only at reception time
        assert results["send_done_at"] > 1.0
        assert results["send_done_at"] == pytest.approx(
            results["recv_done_at"])

    def test_smpi_waitany_races_a_live_issend(self):
        world = SmpiWorld(make_cluster(num_hosts=2), num_ranks=2)
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                send_req = comm.issend("ping", dest=1, tag=1)
                recv_req = comm.irecv(source=1, tag=2)
                first, _ = comm.waitany([send_req, recv_req])
                second, value = comm.waitany([send_req, recv_req])
                results["order"] = (first, second, value)
            else:
                value = comm.recv(source=0, tag=1)
                mpi.compute(1e9)
                comm.send(value.upper(), dest=0, tag=2)

        world.run(program)
        # the issend finishes at reception (fast); the echo lands 1 s later
        assert results["order"] == (0, 1, "PING")

    def test_smpi_iprobe_sees_message_behind_nonmatching_head(self):
        world = SmpiWorld(make_cluster(num_hosts=2), num_ranks=2)
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
            else:
                while not comm.iprobe(source=0, tag=2):
                    mpi.compute(1e6)
                # tag-2 sits behind tag-1 on the mailbox, yet is visible
                results["probe_tag2"] = True
                results["v2"] = comm.recv(source=0, tag=2)
                results["v1"] = comm.recv(source=0, tag=1)

        world.run(program)
        assert results == {"probe_tag2": True, "v2": "second", "v1": "first"}

    def test_smpi_iprobe_sees_message_captured_by_inflight_receive(self):
        """A message harvested by test()'s posted receive stays probeable."""
        world = SmpiWorld(make_cluster(num_hosts=2), num_ranks=2)
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=9)
                comm.test(req)                 # posts the shared receive
                comm.send("go", dest=1, tag=0)
                while not comm.iprobe(source=1, tag=9):
                    mpi.compute(1e6)
                results["probed"] = True
                assert comm.test(req)
                results["value"] = req.value
            else:
                comm.recv(source=0, tag=0)
                comm.send("seen", dest=0, tag=9)

        world.run(program)
        assert results == {"probed": True, "value": "seen"}

    def test_smpi_waitany_timeout_withdraws_posted_receive(self):
        world = SmpiWorld(make_cluster(num_hosts=2), num_ranks=2)
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=5)
                with pytest.raises(SimTimeoutError):
                    comm.waitany([req], timeout=0.25)
                results["timed_out_at"] = mpi.wtime()
                # the withdrawn receive must not steal rank 1's message
                # before the next progress call: sleep past the send date,
                # then receive explicitly
                mpi.compute(2e9)
                results["value"] = comm.wait(req)
                results["recv_done_at"] = mpi.wtime()
            else:
                mpi.compute(1e9)
                comm.send("late", dest=0, tag=5)

        world.run(program)
        assert results["timed_out_at"] == pytest.approx(0.25)
        assert results["value"] == "late"
        # lazy-post contract: the transfer starts at rank 0's wait (t=2.25),
        # not at rank 1's send (t=1)
        assert results["recv_done_at"] > 2.25

    def test_smpi_recv_timeout_withdraws_posted_receive(self):
        world = SmpiWorld(make_cluster(num_hosts=2), num_ranks=2)
        results = {}

        def program(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                with pytest.raises(SimTimeoutError):
                    comm.recv(source=ANY_SOURCE, timeout=0.5)
                results["timed_out_at"] = mpi.wtime()
                # a later send/recv pair still works: no stale receive
                # lingers on the mailbox
                comm.send("go", dest=1, tag=0)
            else:
                mpi.compute(1e9)   # 1 s: longer than rank 0's patience
                results["value"] = comm.recv(source=0, tag=0)

        world.run(program)
        assert results["timed_out_at"] == pytest.approx(0.5)
        assert results["value"] == "go"
