"""Tests for the SURF CPU and network models and the Action state machine."""

import math

import pytest

from repro.surf.action import Action, ActionState
from repro.surf.cpu import CpuModel
from repro.surf.engine import SurfEngine
from repro.surf.network import NetworkModel, NetworkModelConfig
from repro.surf.trace import Trace


class TestActionStateMachine:
    def test_initial_state_running(self):
        action = Action(None, cost=100.0)
        assert action.is_running()
        assert action.remaining == 100.0
        assert action.progress() == 0.0

    def test_finish_sets_state_and_time(self):
        action = Action(None, cost=10.0)
        action.finish(5.0, ActionState.DONE)
        assert action.state is ActionState.DONE
        assert action.finish_time == 5.0

    def test_finish_twice_keeps_first_state(self):
        action = Action(None, cost=10.0)
        action.cancel(1.0)
        action.finish(2.0, ActionState.DONE)
        assert action.state is ActionState.CANCELLED
        assert action.finish_time == 1.0

    def test_suspend_blocks_progress(self):
        action = Action(None, cost=10.0)
        action.suspend()
        assert action.suspended
        assert action.effective_weight() == 0.0
        action.resume()
        assert not action.suspended
        assert action.effective_weight() == 1.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Action(None, cost=-1.0)

    def test_progress_fraction(self):
        action = Action(None, cost=100.0)
        action.remaining = 25.0
        assert action.progress() == pytest.approx(0.75)


class TestCpuModel:
    def test_single_execution_duration(self):
        model = CpuModel()
        cpu = model.add_cpu("host", speed=1e9)
        action = model.execute(cpu, 2e9)
        delta = model.share_resources(0.0)
        assert delta == pytest.approx(2.0)
        done = model.update_actions_state(2.0, 2.0)
        assert done == [action]
        assert action.state is ActionState.DONE

    def test_two_executions_share_the_cpu(self):
        model = CpuModel()
        cpu = model.add_cpu("host", speed=1e9)
        a = model.execute(cpu, 1e9)
        b = model.execute(cpu, 1e9)
        delta = model.share_resources(0.0)
        assert delta == pytest.approx(2.0)  # each runs at 0.5 Gflop/s
        assert a.rate == pytest.approx(5e8)
        assert b.rate == pytest.approx(5e8)

    def test_priorities_change_the_shares(self):
        model = CpuModel()
        cpu = model.add_cpu("host", speed=1e9)
        high = model.execute(cpu, 1e9, priority=3.0)
        low = model.execute(cpu, 1e9, priority=1.0)
        model.share_resources(0.0)
        assert high.rate == pytest.approx(7.5e8)
        assert low.rate == pytest.approx(2.5e8)

    def test_multicore_capacity_but_single_core_bound(self):
        model = CpuModel()
        cpu = model.add_cpu("host", speed=1e9, cores=4)
        single = model.execute(cpu, 1e9)
        model.share_resources(0.0)
        # one task cannot exceed the speed of one core
        assert single.rate == pytest.approx(1e9)
        for _ in range(3):
            model.execute(cpu, 1e9)
        model.share_resources(0.0)
        assert single.rate == pytest.approx(1e9)  # 4 tasks on 4 cores

    def test_duplicate_cpu_name_rejected(self):
        model = CpuModel()
        model.add_cpu("host", speed=1e9)
        with pytest.raises(ValueError):
            model.add_cpu("host", speed=2e9)

    def test_failure_kills_running_actions(self):
        model = CpuModel()
        cpu = model.add_cpu("host", speed=1e9)
        action = model.execute(cpu, 1e9)
        cpu.turn_off()
        failed = model.fail_actions_on(cpu, 1.0)
        assert failed == [action]
        assert action.state is ActionState.FAILED

    def test_availability_scales_speed(self):
        model = CpuModel()
        cpu = model.add_cpu("host", speed=1e9)
        action = model.execute(cpu, 1e9)
        cpu.set_availability(0.5)
        delta = model.share_resources(0.0)
        assert delta == pytest.approx(2.0)
        assert action.rate == pytest.approx(5e8)


class TestNetworkModel:
    def test_transfer_duration_includes_latency(self):
        model = NetworkModel()
        link = model.add_link("l", bandwidth=1e6, latency=0.1)
        action = model.communicate([link], size=1e6)
        # latency phase first
        delta = model.share_resources(0.0)
        assert delta == pytest.approx(0.1)
        model.update_actions_state(0.1, 0.1)
        assert not action.in_latency_phase
        delta = model.share_resources(0.1)
        assert delta == pytest.approx(1.0)
        done = model.update_actions_state(1.1, 1.0)
        assert done == [action]

    def test_two_flows_share_a_link(self):
        model = NetworkModel()
        link = model.add_link("l", bandwidth=1e6, latency=0.0)
        a = model.communicate([link], size=1e6)
        b = model.communicate([link], size=1e6)
        model.share_resources(0.0)
        assert a.rate == pytest.approx(5e5)
        assert b.rate == pytest.approx(5e5)

    def test_multihop_uses_every_link(self):
        model = NetworkModel()
        l1 = model.add_link("l1", bandwidth=1e6, latency=0.01)
        l2 = model.add_link("l2", bandwidth=2e6, latency=0.02)
        action = model.communicate([l1, l2], size=1e6)
        assert action.total_latency == pytest.approx(0.03)
        model.update_actions_state(0.03, 0.03)
        model.share_resources(0.03)
        # bottleneck is the slowest link
        assert action.rate == pytest.approx(1e6)

    def test_zero_byte_message_costs_only_latency(self):
        model = NetworkModel()
        link = model.add_link("l", bandwidth=1e6, latency=0.25)
        action = model.communicate([link], size=0.0)
        delta = model.share_resources(0.0)
        assert delta == pytest.approx(0.25)
        done = model.update_actions_state(0.25, 0.25)
        assert done == [action]

    def test_rate_cap_is_honoured(self):
        model = NetworkModel()
        link = model.add_link("l", bandwidth=1e7, latency=0.0)
        action = model.communicate([link], size=1e6, rate=1e5)
        model.share_resources(0.0)
        assert action.rate == pytest.approx(1e5)

    def test_tcp_gamma_bound_applies_on_long_latency(self):
        config = NetworkModelConfig(tcp_gamma=1e6)
        model = NetworkModel(config)
        link = model.add_link("l", bandwidth=1e9, latency=0.1)
        action = model.communicate([link], size=1e9)
        model.update_actions_state(0.1, 0.1)
        model.share_resources(0.1)
        # rate <= gamma / (2 * latency) = 1e6 / 0.2 = 5e6
        assert action.rate == pytest.approx(5e6)

    def test_tcp_gamma_disabled(self):
        config = NetworkModelConfig(tcp_gamma=0.0)
        model = NetworkModel(config)
        link = model.add_link("l", bandwidth=1e9, latency=0.1)
        action = model.communicate([link], size=1e9)
        model.update_actions_state(0.1, 0.1)
        model.share_resources(0.1)
        assert action.rate == pytest.approx(1e9)

    def test_bandwidth_factor_scales_links(self):
        config = NetworkModelConfig(bandwidth_factor=0.5)
        model = NetworkModel(config)
        link = model.add_link("l", bandwidth=1e6, latency=0.0)
        assert link.bandwidth == pytest.approx(5e5)

    def test_latency_factor_scales_route_latency(self):
        config = NetworkModelConfig(latency_factor=2.0)
        model = NetworkModel(config)
        link = model.add_link("l", bandwidth=1e6, latency=0.05)
        action = model.communicate([link], size=1e3)
        assert action.total_latency == pytest.approx(0.1)

    def test_fat_pipe_backbone_does_not_limit(self):
        model = NetworkModel()
        backbone = model.add_link("bb", bandwidth=1e6, latency=0.0,
                                  shared=False)
        a = model.communicate([backbone], size=1e6)
        b = model.communicate([backbone], size=1e6)
        model.share_resources(0.0)
        assert a.rate == pytest.approx(1e6)
        assert b.rate == pytest.approx(1e6)

    def test_link_failure_fails_crossing_flows(self):
        model = NetworkModel()
        link = model.add_link("l", bandwidth=1e6, latency=0.0)
        action = model.communicate([link], size=1e6)
        link.turn_off()
        failed = model.fail_actions_on(link, 0.5)
        assert failed == [action]
        assert action.state is ActionState.FAILED

    def test_communicate_on_dead_link_fails_immediately(self):
        model = NetworkModel()
        link = model.add_link("l", bandwidth=1e6, latency=0.0)
        link.turn_off()
        action = model.communicate([link], size=1e6)
        assert action.state is ActionState.FAILED


class TestSurfEngine:
    def test_step_advances_to_first_completion(self):
        engine = SurfEngine()
        cpu = engine.cpu_model.add_cpu("h", speed=1e9)
        fast = engine.cpu_model.execute(cpu, 1e9)
        slow = engine.cpu_model.execute(cpu, 3e9)
        result = engine.step()
        assert result.time == pytest.approx(2.0)   # both at 0.5 Gflop/s
        assert fast in result.completed
        assert slow not in result.completed

    def test_step_respects_until_bound(self):
        engine = SurfEngine()
        cpu = engine.cpu_model.add_cpu("h", speed=1e9)
        engine.cpu_model.execute(cpu, 1e10)
        result = engine.step(until=1.5)
        assert result.time == pytest.approx(1.5)
        assert result.reached_bound

    def test_step_returns_none_when_nothing_can_happen(self):
        engine = SurfEngine()
        assert engine.step() is None

    def test_run_until_idle_completes_everything(self):
        engine = SurfEngine()
        cpu = engine.cpu_model.add_cpu("h", speed=1e9)
        engine.cpu_model.execute(cpu, 5e9)
        link = engine.network_model.add_link("l", bandwidth=1e6, latency=0.0)
        engine.network_model.communicate([link], 2e6)
        final = engine.run_until_idle()
        assert final == pytest.approx(5.0)
        assert not engine.has_running_actions()

    def test_availability_trace_slows_computation(self):
        engine = SurfEngine()
        trace = Trace([(0.0, 1.0), (1.0, 0.5)], name="load")
        cpu = engine.cpu_model.add_cpu("h", speed=1e9,
                                       availability_trace=trace)
        engine.register_resource_traces(cpu)
        engine.cpu_model.execute(cpu, 2e9)
        final = engine.run_until_idle()
        # 1 s at full speed (1e9 done), then 1e9 left at 5e8 -> 2 more s
        assert final == pytest.approx(3.0)

    def test_state_trace_failure_fails_actions(self):
        engine = SurfEngine()
        trace = Trace([(1.0, 0.0)], name="death")
        cpu = engine.cpu_model.add_cpu("h", speed=1e9, state_trace=trace)
        engine.register_resource_traces(cpu)
        action = engine.cpu_model.execute(cpu, 1e10)
        result = engine.step()
        assert result.time == pytest.approx(1.0)
        assert action in result.failed
        assert action.state is ActionState.FAILED
        assert result.state_changes and result.state_changes[0][1] is False

    def test_schedule_failure_and_restore(self):
        engine = SurfEngine()
        cpu = engine.cpu_model.add_cpu("h", speed=1e9)
        engine.schedule_failure(cpu, at=1.0, restore_at=2.0)
        engine.cpu_model.execute(cpu, 1e10)
        result = engine.step()
        assert result.time == pytest.approx(1.0)
        assert not cpu.is_on
        result = engine.step()
        assert result.time == pytest.approx(2.0)
        assert cpu.is_on

    def test_cannot_step_backwards(self):
        engine = SurfEngine()
        engine.clock = 5.0
        with pytest.raises(ValueError):
            engine.step(until=1.0)
