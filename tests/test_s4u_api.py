"""Tests for the s4u actor/activity API: futures, ActivitySet, timeouts."""

import pytest

from repro import s4u
from repro.exceptions import SimTimeoutError
from repro.platform import Platform, make_star
from repro.s4u import ActivitySet, Engine, this_actor


def pair_platform(speed=1e9, bandwidth=1e6, latency=0.0):
    platform = Platform("pair")
    platform.add_host("alice", speed)
    platform.add_host("bob", speed)
    platform.add_link("wire", bandwidth, latency)
    platform.connect("alice", "bob", "wire")
    return platform


class TestEngineBasics:
    def test_add_actor_and_run(self):
        engine = Engine(pair_platform())
        times = {}

        def worker(actor):
            yield actor.execute(2e9)
            times["done"] = actor.now

        engine.add_actor("worker", "alice", worker)
        engine.run()
        assert times["done"] == pytest.approx(2.0)

    def test_this_actor_helpers(self):
        engine = Engine(pair_platform())
        seen = {}

        def worker(actor):
            seen["name"] = this_actor.get_name()
            seen["host"] = this_actor.get_host().name
            seen["self"] = this_actor.self_() is actor
            yield this_actor.sleep_for(1.5)
            seen["woke"] = actor.now

        engine.add_actor("w", "alice", worker)
        engine.run()
        assert seen == {"name": "w", "host": "alice", "self": True,
                        "woke": pytest.approx(1.5)}

    def test_mailbox_put_get_roundtrip(self):
        engine = Engine(pair_platform(bandwidth=1e6, latency=0.5))
        times = {}

        def sender(actor):
            yield engine.mailbox("box").put({"k": 1}, size=2e6)
            times["sent"] = actor.now

        def receiver(actor):
            payload = yield engine.mailbox("box").get()
            times["received"] = actor.now
            times["payload"] = payload

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        # 2 MB at 1 MB/s + 0.5 s latency, rendezvous on both sides
        assert times["received"] == pytest.approx(2.5)
        assert times["sent"] == pytest.approx(2.5)
        assert times["payload"] == {"k": 1}


class TestActivityFutures:
    def test_exec_async_overlaps_with_sleep(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def worker(actor):
            comp = yield actor.exec_async(2e9)      # 2 s of compute
            yield this_actor.sleep_for(1.0)         # overlapped
            times["mid"] = actor.now
            yield comp.wait()
            times["done"] = actor.now

        engine.add_actor("w", "alice", worker)
        engine.run()
        assert times["mid"] == pytest.approx(1.0)
        assert times["done"] == pytest.approx(2.0)  # not 3.0: overlapped

    def test_test_polls_before_completion(self):
        engine = Engine(pair_platform(speed=1e9))
        polls = []

        def worker(actor):
            comp = yield actor.exec_async(2e9)
            early = yield comp.test()
            polls.append(early)
            yield this_actor.sleep_for(5.0)
            late = yield comp.test()
            polls.append(late)
            yield comp.wait()

        engine.add_actor("w", "alice", worker)
        engine.run()
        assert polls == [False, True]

    def test_comm_async_returns_payload_on_wait(self):
        engine = Engine(pair_platform())
        got = {}

        def sender(actor):
            yield engine.mailbox("box").put("hello", size=1e6)

        def receiver(actor):
            comm = yield engine.mailbox("box").get_async()
            got["payload"] = yield comm.wait()

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert got["payload"] == "hello"

    def test_put_init_start_then_wait(self):
        engine = Engine(pair_platform())
        times = {}

        def sender(actor):
            comm = engine.mailbox("box").put_init("data", size=1e6)
            assert comm.is_inited()
            yield this_actor.sleep_for(2.0)        # defer the start
            yield comm.start()
            yield comm.wait()
            times["sent"] = actor.now

        def receiver(actor):
            payload = yield engine.mailbox("box").get()
            times["payload"] = payload
            times["received"] = actor.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert times["payload"] == "data"
        # started at t=2, 1 MB at 1 MB/s
        assert times["received"] == pytest.approx(3.0)
        assert times["sent"] == pytest.approx(3.0)

    def test_wait_auto_starts_inited_activity(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def worker(actor):
            comp = this_actor.exec_init(1e9)
            yield comp.wait()                      # wait() starts it
            times["done"] = actor.now

        engine.add_actor("w", "alice", worker)
        engine.run()
        assert times["done"] == pytest.approx(1.0)

    def test_sleep_async_is_waitable(self):
        engine = Engine(pair_platform())
        times = {}

        def worker(actor):
            nap = yield actor.sleep_async(3.0)
            yield actor.execute(1e9)               # 1 s, overlapped
            times["mid"] = actor.now
            yield nap.wait()
            times["done"] = actor.now

        engine.add_actor("w", "alice", worker)
        engine.run()
        assert times["mid"] == pytest.approx(1.0)
        assert times["done"] == pytest.approx(3.0)

    def test_wait_timeout_raises(self):
        engine = Engine(pair_platform())
        outcome = {}

        def lonely(actor):
            comm = yield engine.mailbox("void").get_async()
            try:
                yield comm.wait(timeout=2.5)
            except SimTimeoutError:
                outcome["timeout_at"] = actor.now

        engine.add_actor("lonely", "alice", lonely)
        engine.run()
        assert outcome["timeout_at"] == pytest.approx(2.5)

    def test_cancel_wakes_waiter(self):
        from repro.exceptions import CancelledError
        engine = Engine(pair_platform(speed=1e9))
        outcome = {}
        handles = {}

        def worker(actor):
            comp = yield actor.exec_async(1e12)    # 1000 s
            handles["comp"] = comp
            try:
                yield comp.wait()
            except CancelledError:
                outcome["cancelled_at"] = actor.now

        def saboteur(actor):
            yield this_actor.sleep_for(2.0)
            handles["comp"].cancel()

        engine.add_actor("w", "alice", worker)
        engine.add_actor("x", "bob", saboteur)
        engine.run()
        assert outcome["cancelled_at"] == pytest.approx(2.0)


class TestActivitySet:
    def test_wait_any_reaps_in_completion_order(self):
        """The acceptance scenario: one Exec overlapping two async Comms,
        all reaped through ActivitySet.wait_any in completion order."""
        engine = Engine(pair_platform(speed=1e9, bandwidth=1e6))
        reaped = []

        def feeder(actor, box, size, delay):
            yield this_actor.sleep_for(delay)
            yield engine.mailbox(box).put(box, size=size)

        def worker(actor):
            comp = yield actor.exec_async(3e9)          # done at t=3
            fast = yield engine.mailbox("fast").get_async()   # done at t=1
            slow = yield engine.mailbox("slow").get_async()   # done at t=5
            pending = ActivitySet([comp, fast, slow])
            assert pending.size() == 3
            while not pending.empty():
                done = yield pending.wait_any()
                reaped.append((done.kind, actor.now))

        engine.add_actor("worker", "alice", worker)
        engine.add_actor("f1", "bob", feeder, "fast", 1e6, 0.0)    # 1 s xfer
        engine.add_actor("f2", "bob", feeder, "slow", 1e6, 4.0)    # ends t=5
        engine.run()
        assert [k for k, _ in reaped] == ["comm", "exec", "comm"]
        assert reaped[0][1] == pytest.approx(1.0)
        assert reaped[1][1] == pytest.approx(3.0)
        assert reaped[2][1] == pytest.approx(5.0)

    def test_wait_any_timeout_raises(self):
        engine = Engine(pair_platform())
        outcome = {}

        def worker(actor):
            comm = yield engine.mailbox("void").get_async()
            pending = ActivitySet([comm])
            try:
                yield pending.wait_any(timeout=1.5)
            except SimTimeoutError:
                outcome["at"] = actor.now
                outcome["left"] = pending.size()

        engine.add_actor("w", "alice", worker)
        engine.run()
        assert outcome["at"] == pytest.approx(1.5)
        assert outcome["left"] == 1          # nothing was reaped

    def test_wait_all_blocks_until_every_member_is_done(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def worker(actor):
            a = yield actor.exec_async(1e9)          # 2 s shared: both at t=2
            b = yield actor.exec_async(1e9)
            pending = ActivitySet([a, b])
            yield pending.wait_all()
            times["done"] = actor.now
            times["left"] = pending.size()

        engine.add_actor("w", "alice", worker)
        engine.run()
        assert times["done"] == pytest.approx(2.0)
        assert times["left"] == 0            # the set was emptied

    def test_wait_any_reaps_failed_member_and_set_empties(self):
        """A member that fails must still leave the set, so the canonical
        'while not pending.empty(): wait_any()' loop terminates."""
        from repro.exceptions import HostFailureError
        engine = Engine(pair_platform(speed=1e9))
        log = []

        def worker(actor):
            comp = yield actor.exec_async(1e12, host=engine.host("bob"))
            pending = ActivitySet([comp])
            while not pending.empty():
                try:
                    done = yield pending.wait_any()
                    log.append(("done", done.kind))
                except HostFailureError:
                    log.append(("failed", actor.now))

        def saboteur(actor):
            yield this_actor.sleep_for(1.0)
            engine.host("bob").turn_off()

        engine.add_actor("w", "alice", worker)
        engine.add_actor("x", "alice", saboteur)
        engine.run()
        assert log == [("failed", pytest.approx(1.0))]   # exactly once

    def test_wait_any_timeout_leaves_comm_retryable(self):
        """A wait_any timeout stops the wait, not the pending async comm:
        retrying must still receive a message that arrives later."""
        engine = Engine(pair_platform())
        got = {}

        def receiver(actor):
            comm = yield engine.mailbox("box").get_async()
            pending = ActivitySet([comm])
            try:
                yield pending.wait_any(timeout=1.0)
            except SimTimeoutError:
                got["timed_out_at"] = actor.now
            done = yield pending.wait_any()              # retry succeeds
            got["payload"] = done.get_payload()
            got["received_at"] = actor.now

        def sender(actor):
            yield this_actor.sleep_for(2.5)
            yield engine.mailbox("box").put("late", size=1e6)

        engine.add_actor("r", "alice", receiver)
        engine.add_actor("s", "bob", sender)
        engine.run()
        assert got["timed_out_at"] == pytest.approx(1.0)
        assert got["payload"] == "late"
        assert got["received_at"] == pytest.approx(3.5)

    def test_wait_any_auto_starts_inited_members(self):
        engine = Engine(pair_platform())
        got = {}

        def receiver(actor):
            comm = engine.mailbox("box").get_init()
            assert comm.is_inited()
            pending = ActivitySet([comm])
            done = yield pending.wait_any()              # starts it first
            got["payload"] = done.get_payload()

        def sender(actor):
            yield engine.mailbox("box").put("hi", size=1e6)

        engine.add_actor("r", "alice", receiver)
        engine.add_actor("s", "bob", sender)
        engine.run()
        assert got["payload"] == "hi"
        assert not engine.deadlocked

    def test_wait_any_returns_the_pushed_handle_after_merge(self):
        """A put_init handle merged into an already-pending peer must come
        back from wait_any by its own identity."""
        engine = Engine(pair_platform())
        got = {}

        def receiver(actor):
            yield engine.mailbox("box").get()

        def sender(actor):
            yield this_actor.sleep_for(1.0)      # receiver posts first
            comm = engine.mailbox("box").put_init("x", size=1e3)
            pending = ActivitySet([comm])
            done = yield pending.wait_any()      # starts + merges into peer
            got["same_handle"] = done is comm

        engine.add_actor("r", "alice", receiver)
        engine.add_actor("s", "bob", sender)
        engine.run()
        assert got["same_handle"] is True

    def test_test_any_polls_without_blocking(self):
        engine = Engine(pair_platform(speed=1e9))
        seen = {}

        def worker(actor):
            comp = yield actor.exec_async(2e9)
            pending = ActivitySet([comp])
            seen["early"] = pending.test_any()
            yield this_actor.sleep_for(5.0)
            seen["late"] = pending.test_any() is comp
            seen["left"] = pending.size()

        engine.add_actor("w", "alice", worker)
        engine.run()
        assert seen["early"] is None
        assert seen["late"] is True
        assert seen["left"] == 0


class TestLoopbackRegression:
    def test_same_host_comm_completes_instantly(self):
        """Regression: an empty-route (same host) transfer used to create a
        constraint-free network action that never completed, hanging the
        simulation in a zero-delay engine spin."""
        engine = Engine(pair_platform())
        times = {}

        def sender(actor):
            yield engine.mailbox("box").put("big", size=1e9)

        def receiver(actor):
            yield engine.mailbox("box").get()
            times["done"] = actor.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "alice", receiver)
        engine.run()
        assert times["done"] == pytest.approx(0.0)

    def test_same_host_comm_pays_latency_only(self):
        platform = Platform("lat")
        platform.add_host("alice", 1e9)
        platform.add_host("bob", 1e9)
        platform.add_link("wire", 1e6, 0.25)
        platform.connect("alice", "bob", "wire")
        engine = Engine(platform)
        times = {}

        def sender(actor):
            yield engine.mailbox("box").put("x", size=1e9)

        def receiver(actor):
            yield engine.mailbox("box").get()
            times["done"] = actor.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "alice", receiver)
        engine.run()
        # same-host route is empty: no link latency, no bandwidth charge
        assert times["done"] == pytest.approx(0.0)


class TestActorLifecycle:
    def test_kill_another_actor_s4u_style(self):
        engine = Engine(pair_platform())
        log = []

        def victim(actor):
            try:
                yield this_actor.sleep_for(100.0)
                log.append("survived")
            finally:
                log.append(("killed-at", actor.now))

        def killer(actor, target):
            yield this_actor.sleep_for(2.0)
            yield target.kill()

        target = engine.add_actor("victim", "alice", victim)
        engine.add_actor("killer", "bob", killer, target)
        engine.run()
        assert ("killed-at", pytest.approx(2.0)) in log
        assert "survived" not in log

    def test_join_waits_for_termination(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def short(actor):
            yield actor.execute(3e9)

        def joiner(actor, other):
            yield other.join()
            times["joined"] = actor.now

        other = engine.add_actor("short", "alice", short)
        engine.add_actor("joiner", "bob", joiner, other)
        engine.run()
        assert times["joined"] == pytest.approx(3.0)

    def test_suspend_resume_across_actors(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def worker(actor):
            yield actor.execute(1e9)
            times["done"] = actor.now

        def controller(actor, target):
            yield this_actor.sleep_for(0.5)
            yield target.suspend()
            yield this_actor.sleep_for(2.0)
            yield target.resume()

        target = engine.add_actor("worker", "alice", worker)
        engine.add_actor("ctl", "bob", controller, target)
        engine.run()
        # 0.5 s of work, 2 s suspended, 0.5 s of work
        assert times["done"] == pytest.approx(3.0)

    def test_current_actor_outside_simulation_raises(self):
        with pytest.raises(RuntimeError):
            s4u.current_actor()


class TestRemovedMsgShim:
    def test_legacy_environment_points_at_s4u(self):
        import repro
        with pytest.raises(ImportError, match="s4u.Engine"):
            repro.Environment
