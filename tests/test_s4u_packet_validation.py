"""Packet-level cross-validation of an s4u workload (ROADMAP open item).

``tests/test_fluid_vs_packet.py`` validates the *fluid kernel* against the
packet-level simulator through the legacy MSG shim.  This file closes the
loop for the canonical API: the same p2p transfer pattern expressed with
s4u actors and mailboxes must land within the tolerance already used
there (the paper claims +/-15%; 35% is allowed at these transfer sizes
where TCP slow-start still weighs on the packet-level average).
"""

import pytest

from repro import s4u
from repro.packet import FlowSpec, PacketSimulator
from repro.platform import make_dumbbell

#: Same tolerance as tests/test_fluid_vs_packet.py.
TOLERANCE = 0.35


def s4u_flow_rates(platform, flows, size):
    """Simulate p2p transfers with s4u actors; return bytes/s per flow."""
    engine = s4u.Engine(platform)
    durations = {}

    def peer_send(actor, mailbox, nbytes):
        yield engine.mailbox(mailbox).put(mailbox, size=nbytes)

    def peer_recv(actor, mailbox, key):
        start = engine.now
        yield engine.mailbox(mailbox).get()
        durations[key] = engine.now - start

    for idx, (src, dst) in enumerate(flows):
        mailbox = f"flow-{idx}"
        engine.add_actor(f"send-{idx}", src, peer_send, mailbox, size)
        engine.add_actor(f"recv-{idx}", dst, peer_recv, mailbox, idx)
    engine.run()
    return [size / durations[idx] for idx in range(len(flows))]


def packet_flow_rates(platform, flows, size):
    sim = PacketSimulator(platform)
    results = sim.run([FlowSpec(src, dst, size, flow_id=idx)
                       for idx, (src, dst) in enumerate(flows)])
    by_id = {r.flow_id: r.throughput for r in results}
    return [by_id[idx] for idx in range(len(flows))]


class TestS4uVsPacket:
    def test_p2p_transfers_agree_within_tolerance(self):
        """Fluid (s4u) vs packet completion rates on the dumbbell."""
        flows = [("left-0", "right-0"), ("left-1", "right-1")]
        size = 20e6
        fluid = s4u_flow_rates(make_dumbbell(num_left=2, num_right=2),
                               flows, size)
        packet = packet_flow_rates(make_dumbbell(num_left=2, num_right=2),
                                   flows, size)
        for idx, (f_rate, p_rate) in enumerate(zip(fluid, packet)):
            relative_gap = abs(f_rate - p_rate) / p_rate
            assert relative_gap < TOLERANCE, (
                f"flow {idx}: fluid {f_rate:.0f} vs packet {p_rate:.0f} "
                f"({relative_gap:.1%} apart)")

    def test_two_flow_rate_helpers_agree(self):
        """Both s4u helper formulations produce the same simulation."""
        flows = [("left-0", "right-0"), ("left-1", "right-1")]
        size = 20e6
        s4u_rates = s4u_flow_rates(make_dumbbell(num_left=2, num_right=2),
                                   flows, size)
        from tests.test_fluid_vs_packet import fluid_flow_rates
        other_rates = fluid_flow_rates(make_dumbbell(num_left=2, num_right=2),
                                     flows, size)
        for s_rate, m_rate in zip(s4u_rates, other_rates):
            assert s_rate == pytest.approx(m_rate, rel=1e-12)
