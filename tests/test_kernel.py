"""Tests for the kernel layer: timers and process contexts."""

import math

import pytest

from repro.exceptions import ProcessKilledError
from repro.kernel.context import (
    FINISHED,
    GeneratorContextFactory,
    ThreadContextFactory,
    make_context_factory,
)
from repro.kernel.simcall import SleepCall, YieldCall
from repro.kernel.timer import TimerQueue


class TestTimerQueue:
    def test_fire_in_order(self):
        queue = TimerQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(3.0, lambda: fired.append("c"))
        assert queue.next_date() == 1.0
        count = queue.fire_until(2.5)
        assert count == 2
        assert fired == ["a", "b"]
        assert queue.next_date() == 3.0

    def test_cancelled_timer_does_not_fire(self):
        queue = TimerQueue()
        fired = []
        timer = queue.schedule(1.0, lambda: fired.append("x"))
        timer.cancel()
        assert queue.fire_until(10.0) == 0
        assert fired == []
        assert queue.next_date() == math.inf

    def test_len_and_bool_count_pending_only(self):
        queue = TimerQueue()
        t1 = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert len(queue) == 2
        assert bool(queue)
        t1.cancel()
        assert len(queue) == 1
        queue.fire_until(5.0)
        assert not queue

    def test_negative_date_rejected(self):
        queue = TimerQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1.0, lambda: None)

    def test_timer_scheduled_during_fire_is_honoured(self):
        queue = TimerQueue()
        fired = []

        def first():
            fired.append("first")
            queue.schedule(0.5, lambda: fired.append("nested"))

        queue.schedule(1.0, first)
        queue.fire_until(2.0)
        assert fired == ["first", "nested"]


class TestGeneratorContext:
    def test_yields_simcalls_and_finishes(self):
        def body(tag):
            value = yield SleepCall(duration=1.0)
            assert value == "woke"
            yield YieldCall()

        factory = GeneratorContextFactory()
        ctx = factory.create(body, ("x",), {})
        ctx.start()
        first = ctx.resume()
        assert isinstance(first, SleepCall)
        second = ctx.resume("woke")
        assert isinstance(second, YieldCall)
        assert ctx.resume() is FINISHED
        assert ctx.finished

    def test_plain_function_finishes_immediately(self):
        calls = []

        def body(tag):
            calls.append(tag)

        factory = GeneratorContextFactory()
        ctx = factory.create(body, ("ran",), {})
        ctx.start()
        assert ctx.resume() is FINISHED
        assert calls == ["ran"]

    def test_exception_is_delivered_into_the_generator(self):
        caught = []

        def body():
            try:
                yield SleepCall(duration=1.0)
            except RuntimeError as exc:
                caught.append(str(exc))

        factory = GeneratorContextFactory()
        ctx = factory.create(body, (), {})
        ctx.start()
        ctx.resume()
        assert ctx.resume(exception=RuntimeError("boom")) is FINISHED
        assert caught == ["boom"]

    def test_non_simcall_yield_rejected(self):
        def body():
            yield 42

        factory = GeneratorContextFactory()
        ctx = factory.create(body, (), {})
        ctx.start()
        with pytest.raises(TypeError):
            ctx.resume()

    def test_kill_runs_finally_blocks(self):
        cleaned = []

        def body():
            try:
                yield SleepCall(duration=100.0)
            finally:
                cleaned.append(True)

        factory = GeneratorContextFactory()
        ctx = factory.create(body, (), {})
        ctx.start()
        ctx.resume()
        ctx.kill()
        assert ctx.finished
        assert cleaned == [True]

    def test_kill_before_start(self):
        def body():
            yield SleepCall(duration=1.0)

        factory = GeneratorContextFactory()
        ctx = factory.create(body, (), {})
        ctx.start()
        ctx.kill()
        assert ctx.finished


class TestThreadContext:
    def test_blocking_calls_round_trip(self):
        log = []

        def body(ctx_holder):
            result = ctx_holder["ctx"].block(SleepCall(duration=2.0))
            log.append(result)

        factory = ThreadContextFactory()
        holder = {}
        ctx = factory.create(body, (holder,), {})
        holder["ctx"] = ctx
        ctx.start()
        request = ctx.resume()
        assert isinstance(request, SleepCall)
        assert request.duration == 2.0
        assert ctx.resume("result-value") is FINISHED
        assert log == ["result-value"]

    def test_exception_delivered_to_thread(self):
        caught = []

        def body(holder):
            try:
                holder["ctx"].block(SleepCall(duration=1.0))
            except RuntimeError as exc:
                caught.append(str(exc))

        factory = ThreadContextFactory()
        holder = {}
        ctx = factory.create(body, (holder,), {})
        holder["ctx"] = ctx
        ctx.start()
        ctx.resume()
        assert ctx.resume(exception=RuntimeError("bang")) is FINISHED
        assert caught == ["bang"]

    def test_kill_unblocks_thread(self):
        def body(holder):
            holder["ctx"].block(SleepCall(duration=100.0))

        factory = ThreadContextFactory()
        holder = {}
        ctx = factory.create(body, (holder,), {})
        holder["ctx"] = ctx
        ctx.start()
        ctx.resume()
        ctx.kill()
        assert ctx.finished

    def test_body_exception_propagates_to_kernel(self):
        def body():
            raise ValueError("user bug")

        factory = ThreadContextFactory()
        ctx = factory.create(body, (), {})
        ctx.start()
        with pytest.raises(ValueError):
            ctx.resume()


class TestFactorySelection:
    def test_make_context_factory(self):
        assert make_context_factory("generator").name == "generator"
        assert make_context_factory("thread").name == "thread"
        with pytest.raises(ValueError):
            make_context_factory("fibers")
