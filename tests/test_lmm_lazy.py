"""Tests for the selective (lazy) LMM solve and lazy action management.

The selective solver must be *observationally identical* to a from-scratch
progressive filling: after any sequence of mutations, solving lazily must
give every variable the same value a freshly-built copy of the system
would get.  These tests drive randomized systems through randomized
mutation sequences and compare against the reference at every step.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.surf.cpu import CpuModel
from repro.surf.engine import SurfEngine
from repro.surf.lmm import MaxMinSystem
from repro.surf.network import NetworkModel


# ----------------------------------------------------------------------------------
# reference helper: rebuild the live system from scratch and full-solve it
# ----------------------------------------------------------------------------------

def reference_values(system, use_reference_solver=False):
    """Map variable id -> value a from-scratch full solve would assign.

    With ``use_reference_solver=True`` the rebuilt clone is solved with
    :meth:`MaxMinSystem.solve_reference` — the preserved pre-incremental
    rescanning algorithm — instead of the incremental solver.
    """
    fresh = MaxMinSystem()
    cns_map = {}
    for cns in system.constraints:
        cns_map[cns.id] = fresh.new_constraint(cns.capacity, shared=cns.shared)
    var_map = {}
    for var in system.variables:
        var_map[var.id] = fresh.new_variable(weight=var.weight,
                                             bound=var.bound)
        for elem in var.elements:
            fresh.expand(cns_map[elem.constraint.id], var_map[var.id],
                         elem.usage)
    if use_reference_solver:
        fresh.solve_reference()
    else:
        fresh.solve()
    return {vid: clone.value for vid, clone in var_map.items()}


def assert_matches_reference(system, use_reference_solver=False):
    expected = reference_values(system,
                                use_reference_solver=use_reference_solver)
    for var in system.variables:
        if math.isinf(expected[var.id]):
            assert math.isinf(var.value), f"var {var.id}"
        else:
            assert var.value == pytest.approx(expected[var.id], rel=1e-9,
                                              abs=1e-9), f"var {var.id}"


# ----------------------------------------------------------------------------------
# selective solve == from-scratch solve on randomized mutation sequences
# ----------------------------------------------------------------------------------

@st.composite
def mutation_script(draw):
    """A random system plus a random sequence of mutations."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    num_constraints = draw(st.integers(min_value=1, max_value=6))
    num_variables = draw(st.integers(min_value=1, max_value=10))
    num_mutations = draw(st.integers(min_value=1, max_value=12))
    return seed, num_constraints, num_variables, num_mutations


@settings(max_examples=60, deadline=None)
@given(mutation_script())
def test_property_selective_solve_matches_full_solve(script):
    seed, num_constraints, num_variables, num_mutations = script
    rng = random.Random(seed)

    system = MaxMinSystem()
    constraints = [
        system.new_constraint(rng.uniform(1.0, 1000.0),
                              shared=rng.random() > 0.25)
        for _ in range(num_constraints)
    ]
    variables = []
    for _ in range(num_variables):
        bound = rng.uniform(0.5, 500.0) if rng.random() < 0.4 else None
        var = system.new_variable(weight=rng.uniform(0.1, 10.0), bound=bound)
        for cns in rng.sample(constraints,
                              rng.randint(1, len(constraints))):
            system.expand(cns, var, rng.uniform(0.5, 2.0))
        variables.append(var)

    system.solve()
    assert_matches_reference(system)

    for _ in range(num_mutations):
        live = [v for v in system.variables]
        op = rng.randrange(5)
        if op == 0 and live:
            system.update_variable_weight(
                rng.choice(live), rng.choice([0.0, rng.uniform(0.1, 10.0)]))
        elif op == 1 and live:
            system.update_variable_bound(
                rng.choice(live),
                rng.choice([None, rng.uniform(0.5, 500.0)]))
        elif op == 2:
            system.update_constraint_capacity(
                rng.choice(constraints), rng.uniform(1.0, 1000.0))
        elif op == 3 and live:
            system.remove_variable(rng.choice(live))
        else:
            bound = rng.uniform(0.5, 500.0) if rng.random() < 0.4 else None
            var = system.new_variable(weight=rng.uniform(0.1, 10.0),
                                      bound=bound)
            for cns in rng.sample(constraints,
                                  rng.randint(1, len(constraints))):
                system.expand(cns, var, rng.uniform(0.5, 2.0))
        system.solve()
        assert_matches_reference(system)
        assert system.check_feasible()


def test_solve_all_forces_full_resolve():
    system = MaxMinSystem()
    link = system.new_constraint(100.0)
    a = system.new_variable()
    b = system.new_variable()
    system.expand(link, a)
    system.expand(link, b)
    system.solve()
    # Corrupt the values behind the solver's back; a plain solve is clean
    # and must skip, solve_all must repair.
    a.value = b.value = -1.0
    system.solve()
    assert a.value == -1.0
    system.solve_all()
    assert a.value == pytest.approx(50.0)
    assert b.value == pytest.approx(50.0)


# ----------------------------------------------------------------------------------
# incremental solver == preserved reference solver (PR 5 rewrite)
# ----------------------------------------------------------------------------------

@st.composite
def mixed_system_script(draw):
    """A random mixed system (shared + fat-pipe + bounds + zero-weight +
    detached variables) plus a random mutation sequence."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    num_constraints = draw(st.integers(min_value=1, max_value=7))
    num_variables = draw(st.integers(min_value=1, max_value=14))
    num_mutations = draw(st.integers(min_value=0, max_value=10))
    return seed, num_constraints, num_variables, num_mutations


@settings(max_examples=80, derandomize=True, deadline=None)
@given(mixed_system_script())
def test_property_incremental_solver_matches_reference_solver(script):
    """The heap-driven filling is equivalent to the rescanning reference.

    Random systems mixing shared and fat-pipe constraints, rate bounds,
    zero-weight (suspended) and detached (constraint-free) variables are
    driven through random mutations; after every selective solve, the
    values must match a from-scratch clone solved with the *reference*
    algorithm (``solve_reference``), not just the incremental one.
    """
    seed, num_constraints, num_variables, num_mutations = script
    rng = random.Random(seed)

    system = MaxMinSystem()
    constraints = [
        system.new_constraint(rng.uniform(1.0, 1000.0),
                              shared=rng.random() > 0.3)
        for _ in range(num_constraints)
    ]
    for _ in range(num_variables):
        weight = 0.0 if rng.random() < 0.15 else rng.uniform(0.1, 10.0)
        bound = rng.uniform(0.5, 500.0) if rng.random() < 0.4 else None
        var = system.new_variable(weight=weight, bound=bound)
        if rng.random() < 0.12:
            continue                      # detached: crosses no constraint
        for cns in rng.sample(constraints,
                              rng.randint(1, num_constraints)):
            system.expand(cns, var, rng.uniform(0.5, 2.0))

    system.solve()
    assert_matches_reference(system, use_reference_solver=True)
    assert system.check_feasible()

    for _ in range(num_mutations):
        live = [v for v in system.variables]
        op = rng.randrange(5)
        if op == 0 and live:
            system.update_variable_weight(
                rng.choice(live), rng.choice([0.0, rng.uniform(0.1, 10.0)]))
        elif op == 1 and live:
            system.update_variable_bound(
                rng.choice(live),
                rng.choice([None, rng.uniform(0.5, 500.0)]))
        elif op == 2:
            system.update_constraint_capacity(
                rng.choice(constraints), rng.uniform(1.0, 1000.0))
        elif op == 3 and live:
            system.remove_variable(rng.choice(live))
        else:
            bound = rng.uniform(0.5, 500.0) if rng.random() < 0.4 else None
            var = system.new_variable(weight=rng.uniform(0.1, 10.0),
                                      bound=bound)
            for cns in rng.sample(constraints,
                                  rng.randint(1, num_constraints)):
                system.expand(cns, var, rng.uniform(0.5, 2.0))
        system.solve()
        assert_matches_reference(system, use_reference_solver=True)
        assert system.check_feasible()


# ----------------------------------------------------------------------------------
# complexity counters: dense bottleneck stays near-linear (wall-clock-free)
# ----------------------------------------------------------------------------------

def dense_bottleneck_system(num_variables, seed=11):
    """One shared constraint crossed by N variables, most with a distinct
    bound below fair share — progressive filling freezes them one round at
    a time (the star/master-worker saturation shape)."""
    rng = random.Random(seed)
    system = MaxMinSystem()
    bottleneck = system.new_constraint(1e9)
    fair_share = 1e9 / num_variables
    for i in range(num_variables):
        bound = fair_share * rng.uniform(0.05, 0.95) if i % 8 else None
        var = system.new_variable(weight=rng.uniform(0.5, 2.0), bound=bound)
        system.expand(bottleneck, var, rng.uniform(0.5, 2.0))
    return system


class TestSolverComplexityCounters:
    def test_elements_visited_scales_linearly_on_dense_bottleneck(self):
        """4x the component size must cost ~4x the element visits.

        Counter-based (no wall clock), so it is CI-stable: the incremental
        solver's ``elements_visited`` grows linearly with a log-factor
        slack; a rescanning regression would grow it ~16x here.
        """
        small = dense_bottleneck_system(200)
        small.solve()
        large = dense_bottleneck_system(800)
        large.solve()
        assert large.elements_visited / small.elements_visited < 8.0
        assert large.heap_pops / small.heap_pops < 8.0

    def test_reference_solver_is_quadratic_on_dense_bottleneck(self):
        """The preserved reference shows the contrast on the same shape."""
        small = dense_bottleneck_system(200)
        small.solve_reference()
        large = dense_bottleneck_system(800)
        large.solve_reference()
        assert large.elements_visited / small.elements_visited > 10.0

    def test_dense_bottleneck_values_bitwise_equal_to_reference(self):
        """Same bottleneck selection => bit-identical frozen values."""
        incremental = dense_bottleneck_system(800)
        incremental.solve()
        reference = dense_bottleneck_system(800)
        reference.solve_reference()
        for a, b in zip(incremental.variables, reference.variables):
            assert a.value == b.value, f"var {a.id}"

    def test_cancelled_running_sum_does_not_drop_binding_constraint(self):
        """Catastrophic cancellation of the running denominator.

        ``fl(1e9 + 1e-8) == 1e9``: once the dominant variable freezes via
        its bound, the running sum cancels to exactly 0.0, but the exact
        denominator over the remaining element is 1e-8 — the constraint
        still binds the second variable, which must not be assigned inf.
        """
        system = MaxMinSystem()
        cns = system.new_constraint(1e3)
        a = system.new_variable(bound=1e-12)
        b = system.new_variable()
        system.expand(cns, a, usage=1e9)
        system.expand(cns, b, usage=1e-8)
        system.solve()
        assert system.check_feasible()
        expected = reference_values(system, use_reference_solver=True)
        assert a.value == expected[a.id]
        assert b.value == expected[b.id]
        assert not math.isinf(b.value)


# ----------------------------------------------------------------------------------
# clean systems skip the solve entirely
# ----------------------------------------------------------------------------------

class TestSolveSkipsWhenClean:
    def test_second_solve_is_skipped(self):
        system = MaxMinSystem()
        link = system.new_constraint(100.0)
        var = system.new_variable()
        system.expand(link, var)
        assert system._dirty
        changed = system.solve()
        assert var in changed
        assert not system._dirty
        before = system.solve_skipped
        assert system.solve() == []
        assert system.solve_skipped == before + 1
        assert var.value == pytest.approx(100.0)

    def test_noop_updates_do_not_dirty(self):
        system = MaxMinSystem()
        link = system.new_constraint(100.0)
        var = system.new_variable(bound=50.0)
        system.expand(link, var)
        system.solve()
        system.update_variable_weight(var, 1.0)     # unchanged
        system.update_variable_bound(var, 50.0)     # unchanged
        system.update_constraint_capacity(link, 100.0)  # unchanged
        assert not system._dirty

    def test_disjoint_component_not_resolved(self):
        system = MaxMinSystem()
        link_a = system.new_constraint(100.0)
        link_b = system.new_constraint(80.0)
        var_a = system.new_variable()
        var_b = system.new_variable()
        system.expand(link_a, var_a)
        system.expand(link_b, var_b)
        system.solve()
        baseline = system.variables_solved
        # Touching link_a's component must not re-visit link_b's.
        system.update_constraint_capacity(link_a, 60.0)
        changed = system.solve()
        assert changed == [var_a]
        assert system.variables_solved == baseline + 1
        assert var_a.value == pytest.approx(60.0)
        assert var_b.value == pytest.approx(80.0)

    def test_zero_weight_variable_does_not_bridge_components(self):
        system = MaxMinSystem()
        link_a = system.new_constraint(100.0)
        link_b = system.new_constraint(80.0)
        bridge = system.new_variable(weight=0.0)
        system.expand(link_a, bridge)
        system.expand(link_b, bridge)
        var_b = system.new_variable()
        system.expand(link_b, var_b)
        system.solve()
        baseline = system.constraints_solved
        system.update_constraint_capacity(link_a, 60.0)
        system.solve()
        # Only link_a visited: the zero-weight bridge does not propagate.
        assert system.constraints_solved == baseline + 1
        assert var_b.value == pytest.approx(80.0)


# ----------------------------------------------------------------------------------
# O(1) element removal keeps the incidence structure consistent
# ----------------------------------------------------------------------------------

def test_swap_pop_removal_keeps_constraint_elements_consistent():
    system = MaxMinSystem()
    link = system.new_constraint(100.0)
    variables = [system.new_variable() for _ in range(6)]
    for var in variables:
        system.expand(link, var)
    # Remove from the middle, the front and the back.
    for victim in (variables[2], variables[0], variables[5]):
        system.remove_variable(victim)
        for pos, elem in enumerate(link.elements):
            assert elem._cpos == pos
            assert elem in elem.variable.elements
    system.solve()
    survivors = [variables[1], variables[3], variables[4]]
    for var in survivors:
        assert var.value == pytest.approx(100.0 / 3.0)


# ----------------------------------------------------------------------------------
# lazy action management: suspend to weight 0 and back mid-flight
# ----------------------------------------------------------------------------------

class TestWeightZeroRoundTrip:
    def test_cpu_action_suspend_resume_completion_date(self):
        """2 Gflop at 1 Gflop/s, frozen during [1, 3]: finishes at 4 s."""
        engine = SurfEngine()
        cpu = engine.cpu_model.add_cpu("h", speed=1e9)
        action = engine.cpu_model.execute(cpu, 2e9)

        result = engine.step(until=1.0)
        assert result.reached_bound and result.time == pytest.approx(1.0)
        action.suspend()
        assert action.remaining == pytest.approx(1e9)

        result = engine.step(until=3.0)
        assert result.reached_bound and result.time == pytest.approx(3.0)
        # No progress while suspended.
        assert action.remaining == pytest.approx(1e9)
        action.resume()

        result = engine.step()
        assert result.time == pytest.approx(4.0)
        assert action in result.completed

    def test_lmm_weight_zero_and_back_restores_share(self):
        system = MaxMinSystem()
        link = system.new_constraint(100.0)
        a = system.new_variable()
        b = system.new_variable()
        system.expand(link, a)
        system.expand(link, b)
        system.solve()
        assert a.value == pytest.approx(50.0)
        system.update_variable_weight(a, 0.0)
        changed = system.solve()
        assert set(changed) == {a, b}
        assert a.value == 0.0
        assert b.value == pytest.approx(100.0)
        system.update_variable_weight(a, 1.0)
        system.solve()
        assert a.value == pytest.approx(50.0)
        assert b.value == pytest.approx(50.0)

    def test_priority_change_midflight_shifts_completion(self):
        """Bumping a share mid-flight must reschedule the completion date."""
        engine = SurfEngine()
        cpu = engine.cpu_model.add_cpu("h", speed=1e9)
        a = engine.cpu_model.execute(cpu, 1e9)
        b = engine.cpu_model.execute(cpu, 1e9)
        engine.step(until=1.0)  # both at 0.5 Gflop/s: 0.5 Gflop left each
        a.set_priority(3.0)     # a now gets 0.75 Gflop/s
        result = engine.step()
        assert result.time == pytest.approx(1.0 + 0.5e9 / 0.75e9)
        assert a in result.completed


# ----------------------------------------------------------------------------------
# run_until_idle exposes the completed/failed actions (satellite fix)
# ----------------------------------------------------------------------------------

class TestRunUntilIdleCompletions:
    def test_completions_of_every_step_are_exposed(self):
        engine = SurfEngine()
        cpu = engine.cpu_model.add_cpu("h", speed=1e9)
        fast = engine.cpu_model.execute(cpu, 1e9)
        slow = engine.cpu_model.execute(cpu, 3e9)
        link = engine.network_model.add_link("l", bandwidth=1e6, latency=0.0)
        flow = engine.network_model.communicate([link], 2e6)
        engine.run_until_idle()
        assert set(engine.last_completed) == {fast, slow, flow}
        assert engine.last_failed == []

    def test_failed_actions_are_exposed(self):
        engine = SurfEngine()
        cpu = engine.cpu_model.add_cpu("h", speed=1e9)
        action = engine.cpu_model.execute(cpu, 1e12)
        engine.schedule_failure(cpu, at=1.0)
        engine.run_until_idle(max_time=5.0)
        assert action in engine.last_failed
        assert action not in engine.last_completed


# ----------------------------------------------------------------------------------
# lazy progress extrapolation stays observable mid-flight
# ----------------------------------------------------------------------------------

def test_external_remaining_write_reschedules_completion():
    """Assigning ``remaining`` mid-flight must displace the predicted date."""
    engine = SurfEngine()
    cpu = engine.cpu_model.add_cpu("h", speed=1.0)
    action = engine.cpu_model.execute(cpu, 10.0)
    engine.step(until=2.0)                 # completion predicted at t=10
    action.remaining = 1.0
    result = engine.step()
    assert result.time == pytest.approx(3.0)
    assert action in result.completed


def test_remaining_extrapolates_between_events():
    engine = SurfEngine()
    cpu = engine.cpu_model.add_cpu("h", speed=1e9)
    action = engine.cpu_model.execute(cpu, 4e9)
    engine.step(until=1.0)
    # No event fired for the action itself, yet its observable progress
    # must reflect the elapsed simulated time.
    assert action.remaining == pytest.approx(3e9)
    assert action.progress() == pytest.approx(0.25)
    engine.step(until=2.0)
    assert action.remaining == pytest.approx(2e9)


def test_network_transfer_remaining_during_and_after_latency():
    model = NetworkModel()
    link = model.add_link("l", bandwidth=1e6, latency=0.5)
    action = model.communicate([link], size=1e6)
    model.share_resources(0.0)
    assert action.remaining == pytest.approx(1e6)  # latency: no bytes yet
    model.update_actions_state(0.5, 0.5)
    delta = model.share_resources(0.5)
    assert delta == pytest.approx(1.0)
    done = model.update_actions_state(1.5, 1.0)
    assert done == [action]


def test_cpu_model_has_no_sleep_pseudo_action():
    """Sleeps go through the engine timer queue, not the CPU model."""
    assert not hasattr(CpuModel, "sleep")
