"""Tests for platform description, routing, realization and file loading."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NoRouteError, PlatformError
from repro.platform import Platform, load_platform, save_platform
from repro.platform.loader import parse_quantity, platform_from_dict, platform_to_dict
from repro.surf.trace import Trace


def small_platform():
    platform = Platform("small")
    platform.add_host("a", 1e9)
    platform.add_host("b", 2e9)
    platform.add_router("r")
    platform.add_link("a-r", 1e6, 0.001)
    platform.add_link("r-b", 2e6, 0.002)
    platform.connect("a", "r", "a-r")
    platform.connect("r", "b", "r-b")
    return platform


class TestDescription:
    def test_duplicate_host_rejected(self):
        platform = Platform()
        platform.add_host("a", 1e9)
        with pytest.raises(PlatformError):
            platform.add_host("a", 2e9)

    def test_duplicate_link_rejected(self):
        platform = Platform()
        platform.add_link("l", 1e6)
        with pytest.raises(PlatformError):
            platform.add_link("l", 1e6)

    def test_router_and_host_namespace_shared(self):
        platform = Platform()
        platform.add_host("x", 1e9)
        with pytest.raises(PlatformError):
            platform.add_router("x")

    def test_invalid_speed_rejected(self):
        platform = Platform()
        with pytest.raises(PlatformError):
            platform.add_host("bad", 0.0)

    def test_route_with_unknown_link_rejected(self):
        platform = Platform()
        platform.add_host("a", 1e9)
        platform.add_host("b", 1e9)
        with pytest.raises(PlatformError):
            platform.add_route("a", "b", ["nope"])

    def test_connect_unknown_node_rejected(self):
        platform = Platform()
        platform.add_host("a", 1e9)
        platform.add_link("l", 1e6)
        with pytest.raises(PlatformError):
            platform.connect("a", "ghost", "l")


class TestRouting:
    def test_loopback_route_is_empty(self):
        platform = small_platform()
        assert platform.route_links("a", "a") == []

    def test_graph_route_through_router(self):
        platform = small_platform()
        assert platform.route_links("a", "b") == ["a-r", "r-b"]
        assert platform.route_links("b", "a") == ["r-b", "a-r"]

    def test_explicit_route_takes_precedence(self):
        platform = small_platform()
        platform.add_link("direct", 1e7, 0.0001)
        platform.add_route("a", "b", ["direct"])
        assert platform.route_links("a", "b") == ["direct"]
        # symmetric route added automatically
        assert platform.route_links("b", "a") == ["direct"]

    def test_asymmetric_route(self):
        platform = small_platform()
        platform.add_link("one-way", 1e7, 0.0001)
        platform.add_route("a", "b", ["one-way"], symmetric=False)
        assert platform.route_links("a", "b") == ["one-way"]
        assert platform.route_links("b", "a") == ["r-b", "a-r"]

    def test_no_route_raises(self):
        platform = Platform()
        platform.add_host("a", 1e9)
        platform.add_host("isolated", 1e9)
        platform.add_link("l", 1e6)
        platform.add_router("r")
        platform.connect("a", "r", "l")
        with pytest.raises(NoRouteError):
            platform.route_links("a", "isolated")

    def test_dijkstra_prefers_lower_latency(self):
        platform = Platform()
        platform.add_host("a", 1e9)
        platform.add_host("b", 1e9)
        platform.add_router("slow")
        platform.add_router("fast")
        for name, lat in (("a-slow", 0.1), ("slow-b", 0.1),
                          ("a-fast", 0.001), ("fast-b", 0.001)):
            platform.add_link(name, 1e6, lat)
        platform.connect("a", "slow", "a-slow")
        platform.connect("slow", "b", "slow-b")
        platform.connect("a", "fast", "a-fast")
        platform.connect("fast", "b", "fast-b")
        assert platform.route_links("a", "b") == ["a-fast", "fast-b"]

    def test_route_latency_sums_links(self):
        platform = small_platform()
        assert platform.route_latency("a", "b") == pytest.approx(0.003)

    def test_unknown_node_raises(self):
        platform = small_platform()
        with pytest.raises(PlatformError):
            platform.route_links("a", "ghost")


class TestRealization:
    def test_realize_eager_creates_resources(self):
        platform = small_platform()
        engine = platform.realize(eager=True)
        assert platform.realized
        assert set(platform.cpu_by_host) == {"a", "b"}
        assert set(platform.link_by_name) == {"a-r", "r-b"}
        assert engine.cpu_model.resource_of("a").speed == 1e9

    def test_realize_lazy_by_default(self):
        platform = small_platform()
        platform.realize()
        assert platform.realized and platform.lazy
        # Nothing is materialized until touched...
        assert not platform.cpu_by_host and not platform.link_by_name
        # ...and first touch materializes with the declaration-pinned id.
        cpu_b = platform.cpu_of("b")
        cpu_a = platform.cpu_of("a")
        assert cpu_a.constraint.id == 0 and cpu_b.constraint.id == 1

    def test_realize_lazy_and_eager_exclusive(self):
        platform = small_platform()
        with pytest.raises(PlatformError):
            platform.realize(lazy=True, eager=True)

    def test_realize_twice_rejected(self):
        platform = small_platform()
        platform.realize()
        with pytest.raises(PlatformError):
            platform.realize()

    def test_describe_after_realize_rejected(self):
        platform = small_platform()
        platform.realize()
        with pytest.raises(PlatformError):
            platform.add_host("late", 1e9)

    def test_route_resources_requires_realization(self):
        platform = small_platform()
        with pytest.raises(PlatformError):
            platform.route_resources("a", "b")
        platform.realize()
        links = platform.route_resources("a", "b")
        assert [l.name for l in links] == ["a-r", "r-b"]

    def test_route_resources_memoized_after_realization(self):
        """The comm hot path gets the same resolved list object back."""
        platform = small_platform()
        platform.realize()
        first = platform.route_resources("a", "b")
        assert first is platform.route_resources("a", "b")
        assert [l.name for l in first] == ["a-r", "r-b"]
        # distinct endpoint pairs get distinct cache entries
        reverse = platform.route_resources("b", "a")
        assert [l.name for l in reverse] == ["r-b", "a-r"]
        assert reverse is platform.route_resources("b", "a")

    def test_cpu_of_unknown_host(self):
        platform = small_platform()
        platform.realize()
        with pytest.raises(PlatformError):
            platform.cpu_of("ghost")


class TestSerialization:
    def test_dict_roundtrip_preserves_structure(self):
        platform = small_platform()
        platform.add_route("a", "b", ["a-r", "r-b"])
        data = platform_to_dict(platform)
        rebuilt = platform_from_dict(data)
        assert rebuilt.host_names() == platform.host_names()
        assert rebuilt.link_names() == platform.link_names()
        assert rebuilt.route_links("a", "b") == platform.route_links("a", "b")

    def test_traces_survive_roundtrip(self):
        platform = Platform()
        platform.add_host("volatile", 1e9,
                          state_trace=Trace([(10.0, 0.0)], name="t"),
                          availability_trace=Trace([(0.0, 0.5)], period=5.0))
        data = platform_to_dict(platform)
        rebuilt = platform_from_dict(data)
        spec = rebuilt.hosts["volatile"]
        assert spec.state_trace.events[0].time == 10.0
        assert spec.availability_trace.period == 5.0

    def test_json_file_roundtrip(self, tmp_path):
        platform = small_platform()
        path = os.path.join(tmp_path, "platform.json")
        save_platform(platform, path)
        loaded = load_platform(path)
        assert loaded.host_names() == ["a", "b"]
        assert loaded.route_links("a", "b") == ["a-r", "r-b"]

    def test_xml_loading(self, tmp_path):
        xml = """<platform version="4">
          <host id="alpha" speed="2Gf"/>
          <host id="beta" speed="500Mf" core="2"/>
          <link id="lnk" bandwidth="100MBps" latency="50us"/>
          <route src="alpha" dst="beta"><link_ctn id="lnk"/></route>
        </platform>"""
        path = os.path.join(tmp_path, "p.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(xml)
        platform = load_platform(path)
        assert platform.hosts["alpha"].speed == pytest.approx(2e9)
        assert platform.hosts["beta"].cores == 2
        assert platform.links["lnk"].bandwidth == pytest.approx(100e6 * 1.0)
        assert platform.links["lnk"].latency == pytest.approx(50e-6)
        assert platform.route_links("alpha", "beta") == ["lnk"]


class TestQuantityParsing:
    @pytest.mark.parametrize("text,expected", [
        ("1Gf", 1e9),
        ("2.5MF", 2.5e6),
        ("100MBps", 100e6),
        ("1Gbps", 125e6),
        ("50us", 50e-6),
        ("10ms", 0.01),
        ("3", 3.0),
        (4.5, 4.5),
    ])
    def test_parse_quantity(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected)

    def test_unknown_unit_rejected(self):
        with pytest.raises(PlatformError):
            parse_quantity("12 parsecs")


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=12))
def test_property_star_all_pairs_routable(num_leaves):
    """In any star platform, every pair of hosts has a route of <= 2 links."""
    from repro.platform import make_star
    platform = make_star(num_hosts=num_leaves)
    hosts = platform.host_names()
    for src in hosts:
        for dst in hosts:
            route = platform.route_links(src, dst)
            if src == dst:
                assert route == []
            else:
                assert 1 <= len(route) <= 2
