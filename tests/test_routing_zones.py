"""Tests for hierarchical routing zones (PR 6).

Three families of guarantees:

* **zone-vs-flat identity** — wrapping any flat topology inside a routing
  zone changes nothing: every pair of nodes resolves to the exact same
  ordered list of links.  Checked for every generator in
  :mod:`repro.platform.generators` and for the BRITE importers.
* **strategy equivalence** — ``Dijkstra`` and ``Floyd`` are two schedules
  of the same deterministic shortest-path computation, so they must
  return identical routes and produce bit-identical simulated dates.
  Cross-checked on derandomized hypothesis-generated random graphs.
* **bounded caches and lazy realization** — route resolution stays
  O(touched) in memory: LRU-bounded caches with observable counters, and
  ``realize(lazy=True)`` materializing only what a simulation touches.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NoRouteError, PlatformError
from repro.platform import (
    Platform,
    load_platform,
    make_barabasi_albert_topology,
    make_client_server_lan,
    make_cluster,
    make_dumbbell,
    make_hierarchical_topology,
    make_star,
    make_two_site_grid,
    make_waxman_topology,
    make_zoned_grid,
)
from repro.platform.loader import platform_from_dict, platform_to_dict
from repro.platform.routing import LRUCache, resolve_route
from repro.s4u import Engine

FLAT_GENERATORS = [
    pytest.param(make_cluster, id="cluster"),
    pytest.param(make_star, id="star"),
    pytest.param(make_dumbbell, id="dumbbell"),
    pytest.param(make_two_site_grid, id="two-site-grid"),
    pytest.param(make_client_server_lan, id="client-server-lan"),
    pytest.param(make_waxman_topology, id="brite-waxman"),
    pytest.param(make_barabasi_albert_topology, id="brite-barabasi-albert"),
]


def all_nodes(platform):
    return list(platform.hosts) + list(platform.routers)


def wrap_in_zone(flat, routing="Dijkstra"):
    """Rebuild a flat platform with every node inside one child zone.

    Nodes, links, edges and explicit routes are replayed in their
    original declaration order, so the zone's deterministic Dijkstra sees
    the same graph in the same order as the flat root zone did.
    """
    zoned = Platform(flat.name + "-zoned")
    zone = zoned.add_zone("wrapped", routing=routing)
    for spec in flat.hosts.values():
        zone.add_host(spec.name, spec.speed, cores=spec.cores)
    for router in flat.routers:
        zone.add_router(router)
    for spec in flat.links.values():
        zoned.add_link(spec.name, spec.bandwidth, spec.latency,
                       shared=spec.shared)
    seen = set()
    for vertex, edges in flat.root_zone.adjacency.items():
        for other, link in edges:
            key = (frozenset((vertex, other)), link)
            if key not in seen:
                seen.add(key)
                zone.connect(vertex, other, link)
    for (src, dst), spec in flat.root_zone.routes.items():
        if (src, dst) == (spec.src, spec.dst):  # skip auto-added reverses
            zone.add_route(src, dst, spec.links, symmetric=False)
    return zoned


class TestZoneVsFlatIdentity:
    """Putting a topology inside a zone must not change any route."""

    @pytest.mark.parametrize("generator", FLAT_GENERATORS)
    def test_all_pairs_routes_survive_zone_wrapping(self, generator):
        flat = generator()
        zoned = wrap_in_zone(flat)
        nodes = all_nodes(flat)
        assert all_nodes(zoned) == nodes
        for src, dst in itertools.permutations(nodes, 2):
            assert zoned.route_links(src, dst) == flat.route_links(src, dst), \
                (src, dst)

    @pytest.mark.parametrize("generator", FLAT_GENERATORS)
    def test_flat_generators_stay_flat(self, generator):
        platform = generator()
        assert platform.zones == {}
        assert set(platform.root_zone.nodes) == set(all_nodes(platform))

    def test_flat_route_latency_matches_zoned(self):
        flat = make_dumbbell()
        zoned = wrap_in_zone(flat)
        for src, dst in itertools.permutations(all_nodes(flat), 2):
            assert (zoned.route_latency(src, dst)
                    == flat.route_latency(src, dst))


class TestStrategyEquivalence:
    """Dijkstra and Floyd resolve identical routes, on demand vs sealed."""

    @pytest.mark.parametrize("generator", FLAT_GENERATORS)
    def test_floyd_matches_dijkstra_on_generators(self, generator):
        flat = generator()
        dijkstra = wrap_in_zone(flat, routing="Dijkstra")
        floyd = wrap_in_zone(flat, routing="Floyd")
        for src, dst in itertools.permutations(all_nodes(flat), 2):
            assert (floyd.route_links(src, dst)
                    == dijkstra.route_links(src, dst)), (src, dst)

    def test_floyd_reseals_after_mutation(self):
        platform = Platform("reseal")
        zone = platform.add_zone("z", routing="Floyd")
        for name in ("a", "b", "c"):
            zone.add_host(name, 1e9)
        platform.add_link("ab", 1e6, 1e-3)
        platform.add_link("bc", 1e6, 1e-3)
        zone.connect("a", "b", "ab")
        zone.connect("b", "c", "bc")
        assert platform.route_links("a", "c") == ["ab", "bc"]
        # A shortcut added later must be picked up (the platform cache is
        # invalidated on mutation, and the sealed table must re-seal).
        platform.add_link("ac", 1e6, 1e-6)
        platform.connect("a", "c", "ac")
        assert platform.route_links("a", "c") == ["ac"]

    def test_full_strategy_requires_explicit_routes(self):
        platform = Platform("full")
        zone = platform.add_zone("z", routing="Full")
        zone.add_host("a", 1e9)
        zone.add_host("b", 1e9)
        zone.add_host("c", 1e9)
        platform.add_link("ab", 1e6, 1e-3)
        zone.add_route("a", "b", ["ab"])
        assert platform.route_links("a", "b") == ["ab"]
        assert platform.route_links("b", "a") == ["ab"]
        with pytest.raises(NoRouteError):
            platform.route_links("a", "c")

    def test_unknown_strategy_is_rejected(self):
        platform = Platform("bad")
        with pytest.raises(PlatformError, match="unknown routing strategy"):
            platform.add_zone("z", routing="Bellman-Ford")


def _random_graph_platform(edges, routing):
    """Platform with one zone of ``n`` hosts and the given weighted edges."""
    platform = Platform(f"fuzz-{routing}")
    zone = platform.add_zone("z", routing=routing)
    nodes = sorted({v for edge in edges for v in edge[:2]})
    for idx in nodes:
        zone.add_host(f"h{idx}", 1e9)
    for ename, (a, b, latency_us) in enumerate(edges):
        platform.add_link(f"l{ename}", 1e7, latency_us * 1e-6)
        zone.connect(f"h{a}", f"h{b}", f"l{ename}")
    return platform, [f"h{idx}" for idx in nodes]


_edge = st.tuples(st.integers(0, 7), st.integers(0, 7),
                  st.integers(1, 1000)).filter(lambda e: e[0] != e[1])


class TestDijkstraFloydFuzz:
    """Derandomized hypothesis cross-check on random weighted graphs."""

    @settings(max_examples=60, derandomize=True, deadline=None)
    @given(st.lists(_edge, min_size=1, max_size=20))
    def test_routes_identical(self, edges):
        dijkstra, nodes = _random_graph_platform(edges, "Dijkstra")
        floyd, _ = _random_graph_platform(edges, "Floyd")
        for src, dst in itertools.permutations(nodes, 2):
            try:
                expected = dijkstra.route_links(src, dst)
            except NoRouteError:
                with pytest.raises(NoRouteError):
                    floyd.route_links(src, dst)
                continue
            assert floyd.route_links(src, dst) == expected, (src, dst)

    @settings(max_examples=15, derandomize=True, deadline=None)
    @given(st.lists(_edge, min_size=3, max_size=14))
    def test_simulated_dates_identical(self, edges):
        def run(routing):
            platform, nodes = _random_graph_platform(edges, routing)
            candidates = [(nodes[i], nodes[(i + len(nodes) // 2) % len(nodes)])
                          for i in range(min(3, len(nodes) - 1))]
            pairs = []
            for src, dst in candidates:
                try:
                    if src != dst and platform.route_links(src, dst):
                        pairs.append((src, dst))
                except NoRouteError:
                    pass            # disconnected in both variants alike
            engine = Engine(platform)

            def sender(actor, box):
                yield actor.engine.mailbox(box).put(box, size=1e6)

            def receiver(actor, box):
                yield actor.engine.mailbox(box).get()

            for idx, (src, dst) in enumerate(pairs):
                engine.add_actor(f"s{idx}", src, sender, f"f{idx}")
                engine.add_actor(f"r{idx}", dst, receiver, f"f{idx}")
            return engine.run()

        assert run("Dijkstra") == run("Floyd")


class TestHierarchicalRoutes:
    """Route composition across the zone tree (gateway concatenation)."""

    def test_zoned_grid_route_is_lan_wan_wan_lan(self):
        platform = make_zoned_grid(num_sites=3, hosts_per_site=4)
        assert platform.route_links("site-0-host-1", "site-2-host-3") == \
            ["site-0-lan-1", "wan-0", "wan-2", "site-2-lan-3"]

    def test_intra_site_route_stays_inside_the_zone(self):
        platform = make_zoned_grid(num_sites=2, hosts_per_site=4)
        assert platform.route_links("site-1-host-0", "site-1-host-2") == \
            ["site-1-lan-0", "site-1-lan-2"]

    def test_route_from_gateway_omits_the_lan_hop(self):
        platform = make_zoned_grid(num_sites=2, hosts_per_site=2)
        assert platform.route_links("site-0-gw", "site-1-host-1") == \
            ["wan-0", "wan-1", "site-1-lan-1"]

    def test_loopback_is_empty(self):
        platform = make_zoned_grid(num_sites=1, hosts_per_site=2)
        assert platform.route_links("site-0-host-0", "site-0-host-0") == []

    def test_full_site_routing_variant_matches_default(self):
        floyd = make_zoned_grid(num_sites=2, hosts_per_site=3)
        full = make_zoned_grid(num_sites=2, hosts_per_site=3,
                               site_routing="Full")
        for src, dst in itertools.permutations(all_nodes(floyd), 2):
            assert full.route_links(src, dst) == floyd.route_links(src, dst)

    def test_brite_hierarchical_sites_reach_each_other(self):
        platform = make_hierarchical_topology(num_sites=4, hosts_per_site=3)
        route = platform.route_links("as-0-host-0", "as-3-host-2")
        assert route[0] == "as-0-lan-0"
        assert route[-1] == "as-3-lan-2"
        assert any(name.startswith("wan-") for name in route)

    def test_brite_hierarchical_dijkstra_matches_floyd(self):
        floyd = make_hierarchical_topology(num_sites=4, hosts_per_site=2)
        dijkstra = make_hierarchical_topology(num_sites=4, hosts_per_site=2,
                                              site_routing="Dijkstra")
        for src, dst in itertools.permutations(all_nodes(floyd), 2):
            assert (dijkstra.route_links(src, dst)
                    == floyd.route_links(src, dst))

    def test_nested_zones_route_through_both_gateways(self):
        platform = Platform("nested")
        outer = platform.add_zone("outer")
        inner = outer.add_zone("inner")
        inner.add_router("inner-gw")
        inner.add_host("deep", 1e9)
        outer.add_router("outer-gw")
        platform.add_host("top", 1e9)
        platform.add_link("deep-lan", 1e6, 1e-3)
        inner.connect("deep", "inner-gw", "deep-lan")
        platform.add_link("inner-up", 1e6, 1e-3)
        outer.connect("inner", "outer-gw", "inner-up")
        platform.add_link("outer-up", 1e6, 1e-3)
        platform.connect("outer", "top", "outer-up")
        assert platform.route_links("deep", "top") == \
            ["deep-lan", "inner-up", "outer-up"]
        assert platform.route_links("top", "deep") == \
            ["outer-up", "inner-up", "deep-lan"]

    def test_unrelated_zone_trees_have_no_route(self):
        platform = Platform("split")
        left = platform.add_zone("left")
        right = platform.add_zone("right")
        left.add_host("a", 1e9)
        right.add_host("b", 1e9)
        with pytest.raises(NoRouteError):
            resolve_route(platform, "a", "b")

    def test_explicit_gateway_overrides_first_node(self):
        platform = Platform("gw")
        site = platform.add_zone("site")
        site.add_host("h0", 1e9)
        site.add_host("h1", 1e9)
        assert site.gateway == "h0"
        site.set_gateway("h1")
        assert site.gateway == "h1"

    def test_empty_zone_has_no_gateway(self):
        platform = Platform("empty")
        zone = platform.add_zone("void")
        with pytest.raises(PlatformError, match="no gateway"):
            zone.gateway

    def test_cross_zone_edge_must_be_declared_in_common_ancestor(self):
        platform = make_zoned_grid(num_sites=2, hosts_per_site=1)
        platform2 = make_zoned_grid(num_sites=2, hosts_per_site=1)
        del platform2
        with pytest.raises(PlatformError, match="not vertices of the same"):
            platform.connect("site-0-host-0", "site-1-host-0", "wan-0")


class TestRouteCaches:
    """LRU-bounded caches: hit/miss/eviction counters, copy semantics."""

    def test_lru_cache_evicts_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes "a"
        cache.put("c", 3)                   # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.get("b") is None       # evicted: a miss
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 3

    def test_unbounded_cache_never_evicts(self):
        cache = LRUCache(maxsize=None)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 100
        assert cache.stats()["evictions"] == 0

    def test_platform_route_cache_is_bounded(self):
        platform = make_zoned_grid(num_sites=2, hosts_per_site=8,
                                   site_routing="Dijkstra")
        platform.route_cache_size = 4
        platform._route_cache = LRUCache(4)
        hosts = [f"site-{s}-host-{i}" for s in range(2) for i in range(8)]
        for src, dst in itertools.permutations(hosts, 2):
            platform.route_links(src, dst)
        stats = platform.route_cache_stats()["routes"]
        assert len(platform._route_cache) <= 4
        assert stats["evictions"] > 0

    def test_route_links_returns_a_fresh_copy(self):
        platform = make_zoned_grid(num_sites=2, hosts_per_site=2)
        route = platform.route_links("site-0-host-0", "site-1-host-1")
        route.clear()
        assert platform.route_links("site-0-host-0", "site-1-host-1") != []

    def test_repeated_queries_hit_the_cache(self):
        platform = make_zoned_grid(num_sites=2, hosts_per_site=2)
        platform.route_links("site-0-host-0", "site-1-host-0")
        before = platform.route_cache_stats()["routes"]["hits"]
        platform.route_links("site-0-host-0", "site-1-host-0")
        after = platform.route_cache_stats()["routes"]["hits"]
        assert after == before + 1

    def test_topology_mutation_invalidates_cached_routes(self):
        platform = Platform("mutate")
        for name in ("a", "b"):
            platform.add_host(name, 1e9)
        platform.add_link("slow", 1e6, 1e-2)
        platform.connect("a", "b", "slow")
        assert platform.route_links("a", "b") == ["slow"]
        platform.add_link("fast", 1e6, 1e-6)
        platform.connect("a", "b", "fast")
        assert platform.route_links("a", "b") == ["fast"]

    def test_route_resources_returns_tuple(self):
        platform = make_zoned_grid(num_sites=2, hosts_per_site=2)
        platform.realize()
        resources = platform.route_resources("site-0-host-0", "site-1-host-1")
        assert isinstance(resources, tuple)
        assert [r.name for r in resources] == \
            platform.route_links("site-0-host-0", "site-1-host-1")


class TestLazyRealization:
    """``realize(lazy=True)`` materializes resources in O(touched)."""

    def test_untouched_platform_materializes_nothing(self):
        platform = make_zoned_grid(num_sites=10, hosts_per_site=20)
        platform.realize(lazy=True)
        assert platform.cpu_by_host == {}
        assert platform.link_by_name == {}

    def test_one_route_touches_only_its_links(self):
        platform = make_zoned_grid(num_sites=10, hosts_per_site=20)
        platform.realize(lazy=True)
        resources = platform.route_resources("site-0-host-0", "site-9-host-19")
        assert len(platform.link_by_name) == len(resources) == 4
        platform.cpu_of("site-0-host-0")
        assert len(platform.cpu_by_host) == 1

    def test_traced_resources_materialize_eagerly(self):
        from repro.surf.trace import Trace
        platform = Platform("traced")
        zone = platform.add_zone("z")
        zone.add_host("watched", 1e9,
                      availability_trace=Trace([(0.0, 1.0), (5.0, 0.5)],
                                               period=10.0))
        zone.add_host("plain", 1e9)
        platform.add_link("wire", 1e6, 1e-3)
        zone.connect("watched", "plain", "wire")
        platform.realize(lazy=True)
        assert set(platform.cpu_by_host) == {"watched"}
        assert platform.link_by_name == {}

    def test_lazy_and_eager_dates_are_identical(self):
        def run(lazy):
            platform = make_zoned_grid(num_sites=2, hosts_per_site=2)
            platform.realize(lazy=lazy)
            engine = Engine(platform)

            def sender(actor):
                yield actor.engine.mailbox("x").put("x", size=1e6)

            def receiver(actor):
                yield actor.engine.mailbox("x").get()
                yield actor.execute(1e9)

            engine.add_actor("s", "site-0-host-0", sender)
            engine.add_actor("r", "site-1-host-1", receiver)
            return engine.run()

        assert run(lazy=False) == run(lazy=True)

    def test_large_zoned_platform_realizes_lazily_in_o_touched(self):
        # 10⁴ hosts here (the 10⁵ acceptance run lives in the
        # ``platform_realize`` benchmark scenario): realization must not
        # scale with platform size, only with what the simulation touches.
        platform = make_zoned_grid(num_sites=100, hosts_per_site=100)
        assert len(platform.hosts) == 10_000
        platform.realize(lazy=True)
        engine = Engine(platform)

        def sender(actor):
            yield actor.engine.mailbox("ping").put("ping", size=1e6)

        def receiver(actor):
            yield actor.engine.mailbox("ping").get()

        engine.add_actor("s", "site-0-host-0", sender)
        engine.add_actor("r", "site-99-host-99", receiver)
        engine.run()
        assert len(platform.cpu_by_host) == 2
        assert len(platform.link_by_name) == 4


class TestZoneSerialization:
    """Zones round-trip through ``platform_to_dict``/``platform_from_dict``."""

    def test_flat_platform_dict_has_no_zones_key(self):
        data = platform_to_dict(make_star())
        assert "zones" not in data

    @pytest.mark.parametrize("build", [
        pytest.param(lambda: make_zoned_grid(num_sites=3, hosts_per_site=2),
                     id="zoned-grid"),
        pytest.param(lambda: make_hierarchical_topology(num_sites=3,
                                                        hosts_per_site=2),
                     id="brite-hier"),
    ])
    def test_zoned_round_trip_preserves_routes(self, build):
        original = build()
        reloaded = platform_from_dict(platform_to_dict(original))
        assert set(reloaded.zones) == set(original.zones)
        for src, dst in itertools.permutations(all_nodes(original), 2):
            assert (reloaded.route_links(src, dst)
                    == original.route_links(src, dst)), (src, dst)

    def test_round_trip_is_a_fixed_point(self):
        data = platform_to_dict(make_zoned_grid(num_sites=2,
                                                hosts_per_site=2))
        assert platform_to_dict(platform_from_dict(data)) == data

    def test_default_gateway_is_pinned_on_save(self):
        data = platform_to_dict(make_zoned_grid(num_sites=1,
                                                hosts_per_site=1))
        (zone,) = data["zones"]
        assert zone["gateway"] == "site-0-gw"

    def test_save_load_file_round_trip(self, tmp_path):
        from repro.platform import save_platform
        path = tmp_path / "zoned.json"
        original = make_zoned_grid(num_sites=2, hosts_per_site=2)
        save_platform(original, path)
        reloaded = load_platform(path)
        assert reloaded.route_links("site-0-host-0", "site-1-host-1") == \
            original.route_links("site-0-host-0", "site-1-host-1")
