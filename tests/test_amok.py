"""Tests for the AMOK toolbox: bandwidth measurement, peers, topology, saturation."""

import pytest

from repro.amok import (
    BandwidthMeter,
    PeerManager,
    SaturationExperiment,
    TopologyInference,
)
from repro.gras import SimWorld
from repro.platform import make_dumbbell, make_star, make_two_site_grid


def measure_pair(platform, src, dst, payload_bytes=2_000_000, port=6100):
    """Run one AMOK measurement between two hosts of a fresh platform."""
    world = SimWorld(platform)
    meter = BandwidthMeter(payload_bytes=payload_bytes)
    out = {}

    def source(proc):
        out["result"] = meter.measure(proc, dst, port, reply_port=port + 1)
        meter.stop_sink(proc, dst, port)

    def sink(proc):
        meter.sink(proc, port)

    world.add_process("sink", dst, sink)
    world.add_process("source", src, source)
    world.run()
    return out["result"]


class TestBandwidthMeter:
    def test_measured_bandwidth_matches_platform(self):
        platform = make_star(num_hosts=2, link_bandwidth=1.25e6,
                             link_latency=1e-3)
        result = measure_pair(platform, "leaf-0", "leaf-1")
        # route crosses two 1.25 MB/s links -> 1.25 MB/s end to end
        assert result.bandwidth == pytest.approx(1.25e6, rel=0.2)

    def test_measured_latency_matches_platform(self):
        platform = make_star(num_hosts=2, link_bandwidth=12.5e6,
                             link_latency=5e-3)
        result = measure_pair(platform, "leaf-0", "leaf-1")
        # one-way latency is two hops of 5 ms = 10 ms (plus header cost)
        assert 0.009 < result.latency < 0.03

    def test_wan_is_slower_than_lan(self):
        grid = make_two_site_grid(hosts_per_site=2)
        lan = measure_pair(grid, "siteA-0", "siteA-1")
        wan = measure_pair(make_two_site_grid(hosts_per_site=2),
                           "siteA-0", "siteB-0")
        assert wan.bandwidth < lan.bandwidth
        assert wan.latency > lan.latency

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            BandwidthMeter(payload_bytes=0)


class TestPeerManager:
    def test_register_lookup_and_pairs(self):
        manager = PeerManager()
        manager.register("a", "host-a", 4000, site="one")
        manager.register("b", "host-b", 4000)
        manager.register("c", "host-c", 4000)
        assert len(manager) == 3
        assert "a" in manager
        assert manager.get("a").address == "host-a:4000"
        assert manager.get("missing") is None
        pairs = list(manager.pairs())
        assert len(pairs) == 3          # C(3, 2)
        manager.unregister("b")
        assert len(list(manager.pairs())) == 1

    def test_reregistering_replaces(self):
        manager = PeerManager()
        manager.register("a", "host-a", 4000)
        manager.register("a", "host-a", 5000)
        assert manager.get("a").port == 5000
        assert len(manager) == 1


class TestTopologyInference:
    def test_two_sites_recovered_from_bandwidths(self):
        hosts = ["a0", "a1", "b0", "b1"]
        bandwidth = {}
        for i, src in enumerate(hosts):
            for dst in hosts[i + 1:]:
                same_site = src[0] == dst[0]
                bandwidth[(src, dst)] = 100e6 if same_site else 5e6
        topology = TopologyInference().infer(hosts, bandwidth)
        assert topology.num_clusters == 2
        assert topology.cluster_of("a0") == topology.cluster_of("a1")
        assert topology.cluster_of("b0") == topology.cluster_of("b1")
        assert topology.cluster_of("a0") != topology.cluster_of("b0")
        (pair, inter_bw), = topology.inter_bandwidth.items()
        assert inter_bw == pytest.approx(5e6)

    def test_uniform_bandwidths_give_single_cluster(self):
        hosts = ["x", "y", "z"]
        bandwidth = {(a, b): 1e7 for i, a in enumerate(hosts)
                     for b in hosts[i + 1:]}
        topology = TopologyInference().infer(hosts, bandwidth)
        assert topology.num_clusters == len(hosts) or topology.num_clusters == 1
        # with a flat matrix nothing exceeds 2x the median, so no merge at all
        assert topology.num_clusters == len(hosts)

    def test_empty_and_single_host(self):
        inference = TopologyInference()
        assert inference.infer([], {}).num_clusters == 0
        single = inference.infer(["only"], {})
        assert single.clusters == [["only"]]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            TopologyInference(ratio_threshold=1.0)

    def test_end_to_end_with_simulated_measurements(self):
        """AMOK measurements on a two-site grid recover the two sites."""
        hosts = ["siteA-0", "siteA-1", "siteB-0", "siteB-1"]
        bandwidth = {}
        for i, src in enumerate(hosts):
            for dst in hosts[i + 1:]:
                result = measure_pair(make_two_site_grid(hosts_per_site=2),
                                      src, dst, payload_bytes=500_000)
                bandwidth[(src, dst)] = result.bandwidth
        topology = TopologyInference().infer(hosts, bandwidth)
        assert topology.num_clusters == 2
        assert topology.cluster_of("siteA-0") == topology.cluster_of("siteA-1")
        assert topology.cluster_of("siteB-0") == topology.cluster_of("siteB-1")


class TestSaturation:
    def test_sharing_flows_interfere(self):
        experiment = SaturationExperiment(probe_bytes=5e6)
        result = experiment.run(
            lambda: make_dumbbell(num_left=2, num_right=2),
            measured_pair=("left-0", "right-0"),
            saturating_pair=("left-1", "right-1"))
        assert result.shares_bottleneck
        assert result.interference_ratio == pytest.approx(0.5, abs=0.15)

    def test_disjoint_flows_do_not_interfere(self):
        experiment = SaturationExperiment(probe_bytes=5e6)
        result = experiment.run(
            lambda: make_dumbbell(num_left=3, num_right=3),
            measured_pair=("left-0", "left-1"),
            saturating_pair=("left-2", "right-0"))
        # the measured pair stays on its side of the dumbbell: its links are
        # not crossed by the saturating flow except... left links are private
        assert result.interference_ratio > 0.8
        assert not result.shares_bottleneck
