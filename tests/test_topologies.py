"""Tests for the topology generators (clusters, stars, dumbbells, BRITE)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.platform import (
    make_barabasi_albert_topology,
    make_client_server_lan,
    make_cluster,
    make_dumbbell,
    make_star,
    make_two_site_grid,
    make_waxman_topology,
)
from repro.platform.brite import BriteConfig, random_flows


class TestCluster:
    def test_cluster_has_expected_hosts_and_links(self):
        platform = make_cluster(num_hosts=4)
        assert len(platform.hosts) == 4
        # 4 private links + backbone
        assert len(platform.links) == 5

    def test_cluster_routes_cross_backbone(self):
        platform = make_cluster(num_hosts=4)
        route = platform.route_links("node-0", "node-3")
        assert "backbone" in route
        assert route[0] == "node-link-0"
        assert route[-1] == "node-link-3"

    def test_cluster_needs_one_host(self):
        with pytest.raises(ValueError):
            make_cluster(num_hosts=0)


class TestStarAndDumbbell:
    def test_star_center_is_a_host(self):
        platform = make_star(num_hosts=3, center_name="master")
        assert "master" in platform.hosts
        assert platform.route_links("leaf-0", "master") == ["leaf-link-0"]

    def test_dumbbell_bottleneck_on_cross_routes(self):
        platform = make_dumbbell(num_left=2, num_right=2)
        route = platform.route_links("left-0", "right-1")
        assert "bottleneck" in route
        same_side = platform.route_links("left-0", "left-1")
        assert "bottleneck" not in same_side

    def test_two_site_grid_wan_between_sites(self):
        platform = make_two_site_grid(hosts_per_site=2)
        cross = platform.route_links("siteA-0", "siteB-1")
        assert "wan" in cross
        local = platform.route_links("siteA-0", "siteA-1")
        assert "wan" not in local

    def test_client_server_lan_shape(self):
        platform = make_client_server_lan(num_clients=3, num_servers=2)
        assert len([h for h in platform.hosts if h.startswith("client")]) == 3
        assert len([h for h in platform.hosts if h.startswith("server")]) == 2
        route = platform.route_links("client-0", "server-0")
        assert "internet" in route and "hub-switch" in route


class TestBrite:
    def test_waxman_is_deterministic_for_a_seed(self):
        p1 = make_waxman_topology(num_nodes=10, seed=3)
        p2 = make_waxman_topology(num_nodes=10, seed=3)
        assert p1.link_names() == p2.link_names()
        assert ([p1.links[n].bandwidth for n in p1.link_names()]
                == [p2.links[n].bandwidth for n in p2.link_names()])

    def test_waxman_different_seeds_differ(self):
        p1 = make_waxman_topology(num_nodes=10, seed=1)
        p2 = make_waxman_topology(num_nodes=10, seed=2)
        assert ([p1.links[n].bandwidth for n in p1.link_names()]
                != [p2.links[n].bandwidth for n in p2.link_names()])

    def test_waxman_bandwidths_in_configured_range(self):
        config = BriteConfig(bw_min=1e6, bw_max=2e6)
        platform = make_waxman_topology(num_nodes=8, seed=5, config=config)
        for link in platform.links.values():
            assert 1e6 <= link.bandwidth <= 2e6

    def test_barabasi_albert_connected(self):
        platform = make_barabasi_albert_topology(num_nodes=15, m=2, seed=11)
        hosts = platform.host_names()
        for dst in hosts[1:]:
            assert platform.route_links(hosts[0], dst)

    def test_random_flows_have_distinct_endpoints(self):
        platform = make_waxman_topology(num_nodes=10, seed=42)
        flows = random_flows(platform, num_flows=10, seed=7)
        assert len(flows) == 10
        for src, dst in flows:
            assert src != dst

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BriteConfig(alpha=0.0)
        with pytest.raises(ValueError):
            BriteConfig(bw_min=10.0, bw_max=1.0)
        with pytest.raises(ValueError):
            BriteConfig(lat_min=0.1, lat_max=None)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=1000))
def test_property_waxman_always_connected(num_nodes, seed):
    """Every generated topology is connected: all host pairs have a route."""
    platform = make_waxman_topology(num_nodes=num_nodes, seed=seed)
    hosts = platform.host_names()
    source = hosts[0]
    for dst in hosts[1:]:
        assert platform.route_links(source, dst), f"{source}->{dst} unroutable"


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=3, max_value=20), st.integers(min_value=1, max_value=3),
       st.integers(min_value=0, max_value=100))
def test_property_barabasi_albert_always_connected(num_nodes, m, seed):
    platform = make_barabasi_albert_topology(num_nodes=num_nodes, m=m, seed=seed)
    hosts = platform.host_names()
    for dst in hosts[1:]:
        assert platform.route_links(hosts[0], dst)
