"""Tests for GRAS data descriptions and cross-architecture serialisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DataDescriptionError
from repro.gras.arch import ARCHITECTURES
from repro.gras.datadesc import (
    ArrayDesc,
    ScalarDesc,
    StringDesc,
    StructDesc,
    datadesc_by_name,
    declare_struct,
)

X86 = ARCHITECTURES["x86"]
X86_64 = ARCHITECTURES["x86_64"]
SPARC = ARCHITECTURES["sparc"]
POWERPC = ARCHITECTURES["powerpc"]
ALL_ARCHS = [X86, X86_64, SPARC, POWERPC]


class TestScalars:
    @pytest.mark.parametrize("type_name,value", [
        ("int8", -5), ("uint8", 200), ("int16", -1234), ("uint16", 65000),
        ("int32", -100000), ("uint32", 4000000000), ("int64", -(2 ** 40)),
        ("uint64", 2 ** 50), ("float", 1.5), ("double", 3.141592653589793),
    ])
    @pytest.mark.parametrize("src", ALL_ARCHS, ids=lambda a: a.name)
    @pytest.mark.parametrize("dst", ALL_ARCHS, ids=lambda a: a.name)
    def test_scalar_roundtrip_across_architectures(self, type_name, value,
                                                   src, dst):
        desc = ScalarDesc(type_name)
        assert desc.roundtrip(value, src, dst) == value

    def test_char_roundtrip(self):
        desc = ScalarDesc("char")
        assert desc.roundtrip("Z", X86, SPARC) == "Z"

    def test_wire_size_follows_architecture(self):
        desc = ScalarDesc("long")
        assert desc.wire_size(0, X86) == 4         # 32-bit long
        assert desc.wire_size(0, X86_64) == 8      # 64-bit long

    def test_byte_order_actually_differs(self):
        desc = ScalarDesc("int32")
        little = desc.encode(1, X86)
        big = desc.encode(1, SPARC)
        assert little != big
        assert little == b"\x01\x00\x00\x00"
        assert big == b"\x00\x00\x00\x01"

    def test_unknown_scalar_rejected(self):
        with pytest.raises(DataDescriptionError):
            ScalarDesc("quaternion")

    def test_unencodable_value_rejected(self):
        desc = ScalarDesc("int8")
        with pytest.raises(DataDescriptionError):
            desc.encode(10_000, X86)


class TestCompositeTypes:
    def test_string_roundtrip(self):
        desc = StringDesc()
        assert desc.roundtrip("héllo wörld", SPARC, X86) == "héllo wörld"

    def test_fixed_array_roundtrip_and_length_check(self):
        desc = ArrayDesc(ScalarDesc("int32"), fixed_length=4)
        assert desc.roundtrip([1, 2, 3, 4], X86, POWERPC) == [1, 2, 3, 4]
        with pytest.raises(DataDescriptionError):
            desc.encode([1, 2, 3], X86)

    def test_dynamic_array_roundtrip(self):
        desc = ArrayDesc(ScalarDesc("double"))
        values = [0.5, -1.25, 3.75]
        assert desc.roundtrip(values, POWERPC, X86) == values

    def test_struct_roundtrip(self):
        desc = StructDesc("point", [("x", ScalarDesc("double")),
                                    ("y", ScalarDesc("double")),
                                    ("label", StringDesc())])
        value = {"x": 1.0, "y": -2.5, "label": "origin-ish"}
        assert desc.roundtrip(value, SPARC, X86) == value

    def test_nested_struct_and_arrays(self):
        point = StructDesc("pt", [("x", ScalarDesc("int32")),
                                  ("y", ScalarDesc("int32"))])
        polygon = StructDesc("poly", [("name", StringDesc()),
                                      ("points", ArrayDesc(point))])
        value = {"name": "triangle",
                 "points": [{"x": 0, "y": 0}, {"x": 1, "y": 0},
                            {"x": 0, "y": 1}]}
        assert polygon.roundtrip(value, X86, SPARC) == value

    def test_struct_missing_field_rejected(self):
        desc = StructDesc("p", [("x", ScalarDesc("int32"))])
        with pytest.raises(DataDescriptionError):
            desc.encode({}, X86)

    def test_struct_accepts_attribute_objects(self):
        class Point:
            def __init__(self):
                self.x = 7
        desc = StructDesc("p", [("x", ScalarDesc("int32"))])
        data = desc.encode(Point(), X86)
        decoded, _ = desc.decode(data, X86)
        assert decoded == {"x": 7}

    def test_empty_struct_rejected(self):
        with pytest.raises(DataDescriptionError):
            StructDesc("empty", [])


class TestRegistry:
    def test_builtin_types_available(self):
        for name in ("int", "double", "string", "uint32"):
            assert datadesc_by_name(name) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(DataDescriptionError):
            datadesc_by_name("no-such-type")

    def test_declare_struct_registers_by_name(self):
        declare_struct("test_pair_xy", [("a", "int"), ("b", "double")])
        desc = datadesc_by_name("test_pair_xy")
        value = {"a": 3, "b": 2.5}
        assert desc.roundtrip(value, X86, SPARC) == value

    def test_declare_struct_with_bad_field_rejected(self):
        with pytest.raises(DataDescriptionError):
            declare_struct("bad_struct_field", [("a", 42)])


# ----------------------------------------------------------------------------------
# property-based cross-architecture roundtrips
# ----------------------------------------------------------------------------------

arch_strategy = st.sampled_from(ALL_ARCHS)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
       arch_strategy, arch_strategy)
def test_property_int32_roundtrips_between_any_architectures(value, src, dst):
    desc = ScalarDesc("int32")
    assert desc.roundtrip(value, src, dst) == value


@settings(max_examples=200, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=64),
       arch_strategy, arch_strategy)
def test_property_double_roundtrips_between_any_architectures(value, src, dst):
    desc = ScalarDesc("double")
    assert desc.roundtrip(value, src, dst) == pytest.approx(value, abs=0,
                                                            rel=0) or \
        desc.roundtrip(value, src, dst) == value


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2 ** 16 - 1), max_size=30),
       st.text(max_size=40), arch_strategy, arch_strategy)
def test_property_struct_of_array_and_string_roundtrips(numbers, text, src, dst):
    desc = StructDesc("prop_struct", [
        ("numbers", ArrayDesc(ScalarDesc("uint16"))),
        ("text", StringDesc()),
    ])
    value = {"numbers": numbers, "text": text}
    assert desc.roundtrip(value, src, dst) == value


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), max_size=50),
       arch_strategy)
def test_property_wire_size_matches_encoded_length(values, arch):
    desc = ArrayDesc(ScalarDesc("uint8"))
    encoded = desc.encode(values, arch)
    assert len(encoded) == desc.wire_size(values, arch)
