"""Experiment E9 — scalability of the simulation with the process count.

The paper's architecture panel contrasts how the three interfaces map
simulated processes onto execution vehicles (MSG: all in one process; GRAS:
several per OS process; SMPI: one OS process per rank), which is ultimately
a statement about scalability.  This harness measures how the simulator
behaves as the number of simulated actors grows (a master/worker
application from 16 to 512 workers) and verifies that the wall-clock cost
grows roughly linearly — i.e. the generator-based context factory scales —
and that simulated results stay exact at every scale.
"""

import time

import pytest

from bench_util import print_table
from repro.platform import make_star
from repro.s4u import Engine

TASK_FLOPS = 1e8
TASKS_PER_WORKER = 2


def master_worker(num_workers: int) -> float:
    """Simulate a master dispatching work to ``num_workers`` workers."""
    platform = make_star(num_hosts=num_workers, host_speed=1e9,
                         link_bandwidth=125e6, link_latency=1e-4)
    engine = Engine(platform)

    def master(actor, workers):
        for round_idx in range(TASKS_PER_WORKER):
            for w in range(workers):
                yield actor.engine.mailbox(f"worker-{w}").put(
                    TASK_FLOPS, size=1e4, name=f"job-{round_idx}-{w}")
        for w in range(workers):
            yield actor.engine.mailbox(f"worker-{w}").put("stop", size=1.0)

    def worker(actor, index):
        while True:
            flops = yield actor.engine.mailbox(f"worker-{index}").get()
            if flops == "stop":
                return
            yield actor.execute(flops)

    engine.add_actor("master", "center", master, num_workers)
    for w in range(num_workers):
        engine.add_actor(f"worker-{w}", f"leaf-{w}", worker, w)
    return engine.run()


def test_e9_process_count_scalability(benchmark):
    counts = (16, 64, 256)
    rows = []
    wall_clocks = {}
    simulated = {}
    for count in counts:
        start = time.perf_counter()
        simulated[count] = master_worker(count)
        wall_clocks[count] = time.perf_counter() - start
        rows.append((count, f"{simulated[count]:.3f}s",
                     f"{wall_clocks[count]:.3f}s",
                     f"{wall_clocks[count] / count * 1e3:.2f}ms"))
    print_table("E9: master/worker scalability (generator contexts)",
                ("workers", "simulated time", "wall-clock", "wall-clock per "
                 "process"), rows)

    # simulated results stay exact: each worker computes 2 x 0.1 s, and the
    # master's dispatch is cheap, so the makespan hardly grows with workers
    for count in counts:
        assert simulated[count] == pytest.approx(simulated[counts[0]],
                                                 rel=0.5)
    # wall-clock grows sub-quadratically with the process count
    ratio = wall_clocks[counts[-1]] / max(wall_clocks[counts[0]], 1e-4)
    scale = counts[-1] / counts[0]
    assert ratio < scale ** 2, (
        f"wall clock grew {ratio:.1f}x for {scale}x more processes")

    # the benchmarked figure: one mid-size run
    benchmark(master_worker, 64)
