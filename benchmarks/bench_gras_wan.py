"""Experiment E3 — the paper's WAN table.

*"Average time to exchange one Pastry message on a WAN (in seconds) ...
(WAN: California - France)"* — the paper reports the x86 row, with times
around one second instead of milliseconds on the LAN.

The harness uses the two-site grid platform with a transatlantic-like link
(80 ms one-way latency, ~1 MB/s of usable bandwidth for a single short
message exchange) and checks that the WAN/LAN separation and the codec
ordering match the paper.
"""

import pytest

from bench_util import print_table
from repro.platform import make_star, make_two_site_grid
from repro.wire import ExchangeModel, PASTRY_MESSAGE_DESC, make_pastry_message

ARCHS = ("powerpc", "sparc", "x86")
CODE_NAMES = ("GRAS", "MPICH", "OmniORB", "PBIO", "XML")


def build_wan_model():
    platform = make_two_site_grid(hosts_per_site=1, lan_bandwidth=12.5e6,
                                  lan_latency=5e-5, wan_bandwidth=1.25e6,
                                  wan_latency=80e-3, name="california-france")
    # conversion rate unchanged; only the network differs from E2
    return ExchangeModel(platform, "siteA-0", "siteB-0")


def build_lan_model():
    platform = make_star(num_hosts=2, link_bandwidth=12.5e6,
                         link_latency=5e-5)
    return ExchangeModel(platform, "leaf-0", "leaf-1")


def compute_tables():
    message = make_pastry_message()
    wan = build_wan_model().table(PASTRY_MESSAGE_DESC, message,
                                  architectures=ARCHS)
    lan = build_lan_model().table(PASTRY_MESSAGE_DESC, message,
                                  architectures=ARCHS)
    return wan, lan


def test_e3_wan_pastry_exchange_table(benchmark):
    wan, lan = benchmark(compute_tables)

    rows = []
    for dst in ARCHS:                      # the paper shows the x86 sender row
        pair = f"x86->{dst}"
        results = wan[pair]
        cells = [f"{results[name].total_time * 1e3:.1f}ms"
                 if results[name].available else "n/a"
                 for name in CODE_NAMES]
        rows.append((pair, *cells))
    print_table("E3: WAN (California-France) Pastry message exchange",
                ("pair", *CODE_NAMES), rows)

    for pair, results in wan.items():
        gras_wan = results["GRAS"].total_time
        gras_lan = lan[pair]["GRAS"].total_time
        # The WAN exchange is dominated by latency: well above the LAN time
        # (the paper's WAN numbers are ~1 s vs a few ms on the LAN).
        assert gras_wan > 10 * gras_lan
        assert gras_wan > 50e-3              # at least the one-way latency
        # ordering is preserved on the WAN too
        for name in CODE_NAMES[1:]:
            if results[name].available:
                assert gras_wan <= results[name].total_time
        # latency dominates, so available stacks are within ~4x of each other
        available = [results[name].total_time for name in CODE_NAMES
                     if results[name].available]
        assert max(available) / min(available) < 4.0
