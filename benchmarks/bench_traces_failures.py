"""Experiment E8 — trace-driven availability variation and transient failures.

The SURF feature panel shows a timeline with *CPU availability*, *Network
bandwidth* and a *Transient failure* window.  This harness reproduces that
timeline: a long computation and a long transfer run while an availability
trace throttles the CPU, a bandwidth trace throttles the link, and a
transient failure interrupts a host — and verifies the timing consequences.
"""

import pytest

from bench_util import print_table
from repro.exceptions import ProcessKilledError, TransferFailureError
from repro.platform import Platform
from repro.s4u import Engine
from repro.surf.trace import Trace


def build_platform(with_traces: bool) -> Platform:
    platform = Platform("volatile" if with_traces else "stable")
    cpu_trace = Trace([(0.0, 1.0), (5.0, 0.5)], period=10.0) if with_traces else None
    bw_trace = Trace([(0.0, 1.0), (10.0, 0.25)], period=20.0) if with_traces else None
    platform.add_host("worker", 1e9, availability_trace=cpu_trace)
    platform.add_host("peer", 1e9)
    platform.add_host("victim", 1e9,
                      state_trace=(Trace([(4.0, 0.0), (9.0, 1.0)])
                                   if with_traces else None))
    platform.add_link("wire", 1e6, 1e-3, bandwidth_trace=bw_trace)
    platform.connect("worker", "peer", "wire")
    platform.add_link("victim-wire", 1e6, 1e-3)
    platform.connect("victim", "peer", "victim-wire")
    return platform


def simulate(with_traces: bool):
    engine = Engine(build_platform(with_traces))
    outcome = {}

    def computer(actor):
        yield actor.execute(20e9)         # 20 s at full speed
        outcome["compute_end"] = actor.now

    def sender(actor):
        yield actor.engine.mailbox("bulk").put("bulk", size=20e6)  # 20 s at 1 MB/s
        outcome["transfer_end"] = actor.now

    def receiver(actor):
        yield actor.engine.mailbox("bulk").get()

    def doomed(actor):
        # The sender lives on the failing host: the engine kills it along
        # with its transfer, so the failure may surface as either error.
        try:
            yield actor.engine.mailbox("doomed").put("doomed", size=50e6)
            outcome["victim_transfer"] = "completed"
        except (ProcessKilledError, TransferFailureError):
            outcome["victim_transfer"] = ("failed", actor.now)

    def doomed_receiver(actor):
        try:
            yield actor.engine.mailbox("doomed").get()
        except TransferFailureError:
            pass

    engine.add_actor("computer", "worker", computer)
    engine.add_actor("sender", "worker", sender)
    engine.add_actor("receiver", "peer", receiver)
    engine.add_actor("doomed", "victim", doomed)
    engine.add_actor("doomed-recv", "peer", doomed_receiver)
    engine.run()
    return outcome


def test_e8_traces_and_transient_failures(benchmark):
    stable = simulate(with_traces=False)
    volatile = benchmark(simulate, True)

    rows = [
        ("20 Gflop computation", f"{stable['compute_end']:.2f}s",
         f"{volatile['compute_end']:.2f}s"),
        ("20 MB transfer", f"{stable['transfer_end']:.2f}s",
         f"{volatile['transfer_end']:.2f}s"),
        ("transfer from the failing host", str(stable["victim_transfer"]),
         str(volatile["victim_transfer"])),
    ]
    print_table("E8: effect of availability traces and transient failures",
                ("activity", "stable platform", "trace-driven platform"),
                rows)

    # Without traces everything runs at full speed.
    assert stable["compute_end"] == pytest.approx(20.0, rel=0.01)
    assert stable["transfer_end"] == pytest.approx(20.0, rel=0.05)
    assert stable["victim_transfer"] == "completed"

    # CPU availability halves every other 5 s window: ~30% slower overall.
    assert volatile["compute_end"] > stable["compute_end"] * 1.2
    # Bandwidth drops to 25% over t=10..20 s: 10 MB ship in the first
    # 10 s, 2.5 MB while throttled, and the last 7.5 MB after the periodic
    # trace restores full speed -- 27.5 s in total.
    assert volatile["transfer_end"] == pytest.approx(27.5, abs=0.01)
    # The transient failure at t=4 s kills the victim's transfer.
    assert volatile["victim_transfer"][0] == "failed"
    assert volatile["victim_transfer"][1] == pytest.approx(4.0, abs=0.01)
