"""Experiment S1 — s4u-native scale: thousands of actors through ActivitySet.

The ROADMAP asks for large-scale scenarios driving thousands of actors
through the async s4u primitives.  This harness runs an async client/server
fleet on a star platform: every worker overlaps an execution with a message
to a central sink and reaps both through ``ActivitySet.wait_any``, while the
sink drains one mailbox for the whole fleet.  It exercises exactly the hot
path the lazy SURF kernel optimises — thousands of concurrent actions with
tiny, disjoint LMM components — and reports kernel observability counters
(how many solves were skipped, how much of the system each solve visited)
alongside wall-clock throughput.

Run standalone (``python bench_s4u_scale.py [num_workers]``) or through
``run_benchmarks.py``.
"""

import sys
import time

from repro.platform import make_star
from repro.s4u import ActivitySet, Engine


def solver_stats(engine):
    """Kernel observability counters of both LMM systems."""
    stats = {}
    for label, system in (("cpu", engine.surf.cpu_model.system),
                          ("network", engine.surf.network_model.system)):
        stats[label] = {
            "solve_calls": system.solve_calls,
            "solve_skipped": system.solve_skipped,
            "constraints_solved": system.constraints_solved,
            "variables_solved": system.variables_solved,
        }
    return stats


def run_fleet(num_workers: int = 1000, rounds: int = 2,
              flops: float = 5e7, msg_bytes: float = 1e4) -> dict:
    """Async fleet: ``num_workers`` actors, each overlapping exec + comm."""
    platform = make_star(num_hosts=num_workers, host_speed=1e9,
                         link_bandwidth=125e6, link_latency=1e-4)
    engine = Engine(platform)
    received = [0]

    def sink(actor, total):
        box = engine.mailbox("sink")
        for _ in range(total):
            yield box.get()
            received[0] += 1

    def worker(actor, index):
        box = engine.mailbox("sink")
        for _ in range(rounds):
            comp = yield actor.exec_async(flops)
            comm = yield box.put_async(index, size=msg_bytes)
            pending = ActivitySet([comp, comm])
            while not pending.empty():
                yield pending.wait_any()

    engine.add_actor("sink", "center", sink, num_workers * rounds)
    for i in range(num_workers):
        engine.add_actor(f"worker-{i}", f"leaf-{i}", worker, i)

    peak_actors = num_workers + 1
    start = time.perf_counter()
    simulated = engine.run()
    wall = time.perf_counter() - start

    if received[0] != num_workers * rounds:
        raise AssertionError(
            f"sink received {received[0]} of {num_workers * rounds} messages")

    # One Exec and one Comm completed per worker per round.
    activities = 2 * rounds * num_workers
    return {
        "simulated_time_s": simulated,
        "wall_clock_s": wall,
        "peak_actors": peak_actors,
        "activities": activities,
        "activities_per_s": activities / wall if wall > 0 else float("inf"),
        "lmm": solver_stats(engine),
    }


def test_s1_thousand_actor_fleet():
    """Tier-2 sanity: a 1000-actor fleet completes and stays exact."""
    result = run_fleet(num_workers=1000, rounds=2)
    assert result["peak_actors"] == 1001
    # Every worker computes 2 x 0.05 s and ships 2 messages; the sink
    # drains sequentially but transfers are tiny, so the makespan stays
    # near the per-worker critical path regardless of the fleet size.
    assert 0.1 <= result["simulated_time_s"] < 2.0


if __name__ == "__main__":
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    outcome = run_fleet(num_workers=workers)
    for key, value in outcome.items():
        print(f"{key}: {value}")
