"""Experiments S1–S4 — s4u-native scale workloads.

The ROADMAP asks for large-scale scenarios driving thousands of actors
through the async s4u primitives.  Four workloads live here:

* **S1 fleet** (:func:`run_fleet`) — an async client/server fleet: every
  worker overlaps an execution with a message to a central sink and reaps
  both through ``ActivitySet.wait_any`` while the sink drains one mailbox
  for the whole fleet;
* **S2 pipeline** (:func:`run_pipeline`) — parallel multi-stage pipelines
  where each stage overlaps its computation with the forward transfer of
  the previous block (classic comm/compute overlap);
* **S3 activity race** (:func:`run_activity_race`) — actors racing an
  execution against a sleep and cancelling the loser, exercising the
  cancellation and selective re-solve paths at scale;
* **S4 actor churn** (:func:`run_actor_churn`) — a spawner creating waves
  of short-lived actors that compute, report to a sink and die, exercising
  dynamic actor creation/teardown and join;
* **S5 failure churn** (:func:`run_failure_churn`) — a master/worker fleet
  surviving seeded host churn: a :class:`~repro.s4u.failure.FailureInjector`
  keeps killing random worker hosts mid-work while ``auto_restart`` reboots
  the workers on restore, until the sink has collected every result.

:func:`run_smpi_scale` additionally drives the ported SMPI layer (eager
detached puts + per-rank mailbox drain, no task wrappers) at scale so the
port's hot-path win shows up in the perf trajectory.

All of them exercise exactly the hot path the lazy SURF kernel optimises —
many concurrent actions with tiny, disjoint LMM components — and report
kernel observability counters (how many solves were skipped, how much of
the system each solve visited) alongside wall-clock throughput.

Run standalone (``python bench_s4u_scale.py [num_workers]``) or through
``run_benchmarks.py``.
"""

import math
import sys
import time

from repro.platform import make_cluster, make_star, make_zoned_grid
from repro.s4u import ActivitySet, Engine


def solver_stats(engine):
    """Kernel observability counters of both LMM systems."""
    return {"cpu": engine.surf.cpu_model.solver_stats(),
            "network": engine.surf.network_model.solver_stats()}


def run_fleet(num_workers: int = 1000, rounds: int = 2,
              flops: float = 5e7, msg_bytes: float = 1e4) -> dict:
    """Async fleet: ``num_workers`` actors, each overlapping exec + comm."""
    platform = make_star(num_hosts=num_workers, host_speed=1e9,
                         link_bandwidth=125e6, link_latency=1e-4)
    engine = Engine(platform)
    received = [0]

    def sink(actor, total):
        box = engine.mailbox("sink")
        for _ in range(total):
            yield box.get()
            received[0] += 1

    def worker(actor, index):
        box = engine.mailbox("sink")
        for _ in range(rounds):
            comp = yield actor.exec_async(flops)
            comm = yield box.put_async(index, size=msg_bytes)
            pending = ActivitySet([comp, comm])
            while not pending.empty():
                yield pending.wait_any()

    engine.add_actor("sink", "center", sink, num_workers * rounds)
    for i in range(num_workers):
        engine.add_actor(f"worker-{i}", f"leaf-{i}", worker, i)

    peak_actors = num_workers + 1
    start = time.perf_counter()
    simulated = engine.run()
    wall = time.perf_counter() - start

    if received[0] != num_workers * rounds:
        raise AssertionError(
            f"sink received {received[0]} of {num_workers * rounds} messages")

    # One Exec and one Comm completed per worker per round.
    activities = 2 * rounds * num_workers
    return {
        "simulated_time_s": simulated,
        "wall_clock_s": wall,
        "peak_actors": peak_actors,
        "activities": activities,
        "activities_per_s": activities / wall if wall > 0 else float("inf"),
        "lmm": solver_stats(engine),
        "kernel": engine.kernel_stats(),
    }


def run_sharded_zones(num_hosts: int = 1000, rounds: int = 2,
                      flops: float = 5e7, msg_bytes: float = 1e4,
                      sharded: bool = True) -> dict:
    """Zone-partitioned fleet: per-site sinks plus cross-zone reporting.

    The PR 7 acceptance scenario for the sharded kernel: a zoned grid
    whose sites map one-to-one onto kernel shards.  Host 0 of each site
    runs the site's sink; the other hosts run the same overlap worker as
    :func:`run_fleet` against their local sink, except every eighth
    worker reports to the *next* site's sink so the WAN links and the
    cross-shard migration path stay busy.  ``sharded=False`` runs the
    identical workload on the flat kernel (the bit-identity reference).
    """
    if num_hosts >= 50_000:
        num_sites = 64
    elif num_hosts >= 1024:
        num_sites = 16
    else:
        num_sites = 4
    hosts_per_site = max(2, num_hosts // num_sites)
    # Dijkstra (on-demand, early-exit) intra-site routing: Floyd would seal
    # a per-source predecessor tree for every worker host that routes —
    # O(hosts_per_site) memory per *source* is tens of GB at the 10⁵ rung.
    platform = make_zoned_grid(num_sites=num_sites,
                               hosts_per_site=hosts_per_site,
                               host_speed=1e9, lan_bandwidth=125e6,
                               lan_latency=1e-4, wan_bandwidth=125e6,
                               wan_latency=1e-3,
                               site_routing="Dijkstra")
    engine = Engine(platform, sharded=sharded)
    received = [0]

    def sink(actor, site, total):
        box = engine.mailbox(f"sink-{site}")
        for _ in range(total):
            yield box.get()
            received[0] += 1

    def worker(actor, target_site):
        box = engine.mailbox(f"sink-{target_site}")
        for _ in range(rounds):
            comp = yield actor.exec_async(flops)
            comm = yield box.put_async(actor.name, size=msg_bytes)
            pending = ActivitySet([comp, comm])
            while not pending.empty():
                yield pending.wait_any()

    expected = [0] * num_sites
    index = 0
    for s in range(num_sites):
        for i in range(1, hosts_per_site):
            target = (s + 1) % num_sites if index % 8 == 0 else s
            expected[target] += rounds
            engine.add_actor(f"worker-{s}-{i}", f"site-{s}-host-{i}",
                             worker, target)
            index += 1
    for s in range(num_sites):
        engine.add_actor(f"sink-{s}", f"site-{s}-host-0", sink, s,
                         expected[s])

    total = sum(expected)
    peak_actors = index + num_sites
    start = time.perf_counter()
    simulated = engine.run()
    wall = time.perf_counter() - start

    if received[0] != total:
        raise AssertionError(
            f"sinks received {received[0]} of {total} messages")

    activities = 2 * total   # one Exec and one Comm per message
    return {
        "simulated_time_s": simulated,
        "wall_clock_s": wall,
        "peak_actors": peak_actors,
        "activities": activities,
        "activities_per_s": activities / wall if wall > 0 else float("inf"),
        "lmm": solver_stats(engine),
        "kernel": engine.kernel_stats(),
    }


def run_pipeline(num_chains: int = 100, stages: int = 4, rounds: int = 3,
                 flops: float = 2e7, msg_bytes: float = 5e4) -> dict:
    """S2: ``num_chains`` parallel pipelines overlapping comm and compute.

    Stage ``s`` of a chain receives block ``r`` from stage ``s-1``, then
    computes on it *while* forwarding it to stage ``s+1`` (both reaped via
    ``ActivitySet``), so successive rounds stream through the pipeline.
    """
    platform = make_star(num_hosts=num_chains * stages, host_speed=1e9,
                         link_bandwidth=125e6, link_latency=1e-4)
    engine = Engine(platform)
    delivered = [0]

    def stage_body(actor, chain, stage):
        inbox = (engine.mailbox(f"pipe:{chain}:{stage}")
                 if stage > 0 else None)
        outbox = (engine.mailbox(f"pipe:{chain}:{stage + 1}")
                  if stage < stages - 1 else None)
        for r in range(rounds):
            if inbox is not None:
                yield inbox.get()
                if stage == stages - 1:
                    delivered[0] += 1
            pending = ActivitySet()
            comp = yield actor.exec_async(flops)
            pending.push(comp)
            if outbox is not None:
                comm = yield outbox.put_async(r, size=msg_bytes)
                pending.push(comm)
            while not pending.empty():
                yield pending.wait_any()

    for chain in range(num_chains):
        for stage in range(stages):
            engine.add_actor(f"pipe-{chain}-{stage}",
                             f"leaf-{chain * stages + stage}",
                             stage_body, chain, stage)

    start = time.perf_counter()
    simulated = engine.run()
    wall = time.perf_counter() - start

    if delivered[0] != num_chains * rounds:
        raise AssertionError(
            f"sinks received {delivered[0]} of {num_chains * rounds} blocks")

    # Per chain per round: `stages` execs + `stages - 1` transfers.
    activities = num_chains * rounds * (2 * stages - 1)
    return {
        "simulated_time_s": simulated,
        "wall_clock_s": wall,
        "peak_actors": num_chains * stages,
        "activities": activities,
        "activities_per_s": activities / wall if wall > 0 else float("inf"),
        "lmm": solver_stats(engine),
    }


def run_activity_race(num_actors: int = 500, rounds: int = 4,
                      fast_flops: float = 1e6, slow_flops: float = 1e9,
                      nap: float = 0.01) -> dict:
    """S3: every actor races an exec against a sleep, cancelling the loser.

    On even rounds the execution wins (tiny), on odd rounds the sleep wins
    and the (large) execution is cancelled mid-flight — exercising both
    completion orders plus the cancellation path of the lazy kernel at
    scale.
    """
    platform = make_star(num_hosts=num_actors, host_speed=1e9,
                         link_bandwidth=125e6, link_latency=1e-4)
    engine = Engine(platform)
    outcomes = [0, 0]  # [exec wins, sleep wins]

    def racer(actor, index):
        for r in range(rounds):
            flops = fast_flops if r % 2 == 0 else slow_flops
            comp = yield actor.exec_async(flops)
            snooze = yield actor.sleep_async(nap)
            pending = ActivitySet([comp, snooze])
            winner = yield pending.wait_any()
            outcomes[0 if winner is comp else 1] += 1
            for loser in pending.activities:
                loser.cancel()
                pending.erase(loser)

    for i in range(num_actors):
        engine.add_actor(f"racer-{i}", f"leaf-{i}", racer, i)

    start = time.perf_counter()
    simulated = engine.run()
    wall = time.perf_counter() - start

    expected_exec_wins = num_actors * ((rounds + 1) // 2)
    if outcomes[0] != expected_exec_wins:
        raise AssertionError(
            f"exec won {outcomes[0]} races, expected {expected_exec_wins}")

    activities = num_actors * rounds * 2   # one winner + one cancelled each
    return {
        "simulated_time_s": simulated,
        "wall_clock_s": wall,
        "peak_actors": num_actors,
        "activities": activities,
        "activities_per_s": activities / wall if wall > 0 else float("inf"),
        "lmm": solver_stats(engine),
    }


def run_actor_churn(waves: int = 10, actors_per_wave: int = 100,
                    num_hosts: int = 64, flops: float = 1e6,
                    msg_bytes: float = 1e3) -> dict:
    """S4: waves of short-lived actors spawned, joined and reaped.

    A spawner actor creates ``actors_per_wave`` workers per wave from
    *inside* the simulation; each worker computes briefly, reports to a
    sink and dies; the spawner joins the whole wave before launching the
    next.  Peak alive population stays one wave — the historical actor
    list grows ``waves`` times larger, which the engine's alive-actor
    set must shrug off.
    """
    platform = make_star(num_hosts=num_hosts, host_speed=1e9,
                         link_bandwidth=125e6, link_latency=1e-4)
    engine = Engine(platform)
    reports = [0]
    total = waves * actors_per_wave

    def sink(actor):
        box = engine.mailbox("churn:sink")
        for _ in range(total):
            yield box.get()
            reports[0] += 1

    def worker(actor, index):
        yield actor.execute(flops)
        yield engine.mailbox("churn:sink").put(index, size=msg_bytes)

    def spawner(actor):
        for wave in range(waves):
            batch = []
            for i in range(actors_per_wave):
                batch.append(engine.add_actor(
                    f"churn-{wave}-{i}", f"leaf-{i % num_hosts}",
                    worker, wave * actors_per_wave + i))
            for spawned in batch:
                yield spawned.join()

    engine.add_actor("churn-sink", "center", sink)
    engine.add_actor("churn-spawner", "center", spawner)

    start = time.perf_counter()
    simulated = engine.run()
    wall = time.perf_counter() - start

    if reports[0] != total:
        raise AssertionError(
            f"sink saw {reports[0]} of {total} worker reports")

    activities = 2 * total   # one exec + one comm per short-lived actor
    return {
        "simulated_time_s": simulated,
        "wall_clock_s": wall,
        "peak_actors": actors_per_wave + 2,
        "total_actors": total + 2,
        "activities": activities,
        "activities_per_s": activities / wall if wall > 0 else float("inf"),
        "lmm": solver_stats(engine),
    }


def run_failure_churn(num_workers: int = 64, results_target: int = 2000,
                      flops: float = 1e6, msg_bytes: float = 1e3,
                      seed: int = 42, mtbf: float = 0.002,
                      mean_downtime: float = 0.01,
                      max_failures: int = 200) -> dict:
    """S5: a master/worker fleet surviving seeded host churn.

    ``num_workers`` auto-restart workers (daemons, so only the sink keeps
    the simulation alive) loop compute-then-report forever; a seeded
    :class:`FailureInjector` keeps turning random worker hosts off and back
    on.  Dead workers lose their in-flight work, the sink shrugs off the
    failed transfers, restored hosts reboot their workers — the run ends
    when the sink banked ``results_target`` results, however much churn it
    took.  Reported: events/s (results + failures + restarts) and the churn
    counters.
    """
    from repro.exceptions import TransferFailureError
    from repro.s4u import FailureInjector

    platform = make_star(num_hosts=num_workers, host_speed=1e9,
                         link_bandwidth=125e6, link_latency=1e-4)
    engine = Engine(platform)
    received = [0]

    def sink(actor):
        box = engine.mailbox("sink")
        while received[0] < results_target:
            try:
                yield box.get()
                received[0] += 1
            except TransferFailureError:
                # The matched worker's host died mid-transfer; re-post.
                continue

    def worker(actor, index):
        box = engine.mailbox("sink")
        while True:
            yield actor.execute(flops)
            yield box.put(index, size=msg_bytes)

    engine.add_actor("sink", "center", sink)
    for i in range(num_workers):
        engine.add_actor(f"worker-{i}", f"leaf-{i}", worker, i,
                         daemon=True, auto_restart=True)

    injector = FailureInjector(
        engine, seed=seed, hosts=[f"leaf-{i}" for i in range(num_workers)],
        mtbf=mtbf, mean_downtime=mean_downtime, max_failures=max_failures)
    injector.start()

    start = time.perf_counter()
    simulated = engine.run()
    wall = time.perf_counter() - start

    if received[0] != results_target:
        raise AssertionError(
            f"sink banked {received[0]} of {results_target} results")

    events = results_target + injector.failures + engine.restart_count
    return {
        "simulated_time_s": simulated,
        "wall_clock_s": wall,
        "peak_actors": num_workers + 1,
        "events": events,
        "events_per_s": events / wall if wall > 0 else float("inf"),
        "failures": injector.failures,
        "restores": injector.restores,
        "restarts": engine.restart_count,
        "lmm": solver_stats(engine),
    }


def run_smpi_scale(num_ranks: int = 32, rounds: int = 4,
                   msg_bytes: int = 100_000) -> dict:
    """SMPI at scale: ring exchanges + allreduces over the ported layer.

    Every round each rank ships ``msg_bytes`` to its right neighbour (an
    eager detached put on the s4u engine — no per-message task allocation)
    and the communicator then allreduces a token.  Thread contexts, like
    real SMPI programs.
    """
    from repro.smpi import MPI_BYTE, SmpiWorld

    world = SmpiWorld(make_cluster(num_hosts=num_ranks),
                      num_ranks=num_ranks)
    totals = []

    def program(mpi):
        comm = mpi.COMM_WORLD
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for r in range(rounds):
            comm.send(0, dest=right, tag=r, count=msg_bytes,
                      datatype=MPI_BYTE)
            comm.recv(source=left, tag=r)
            totals.append(comm.allreduce(1))

    start = time.perf_counter()
    simulated = world.run(program)
    wall = time.perf_counter() - start

    if totals and any(t != num_ranks for t in totals):
        raise AssertionError("allreduce token mismatch")

    # Per round: one ring message per rank plus the allreduce tree
    # (reduce + bcast ~ 2 log2(P) hops per rank).
    log2p = max(1, int(math.ceil(math.log2(max(2, num_ranks)))))
    events = rounds * num_ranks * (1 + 2 * log2p)
    return {
        "simulated_time_s": simulated,
        "wall_clock_s": wall,
        "peak_actors": num_ranks,
        "events": events,
        "lmm": solver_stats(world.engine),
    }


def test_s1_thousand_actor_fleet():
    """Tier-2 sanity: a 1000-actor fleet completes and stays exact."""
    result = run_fleet(num_workers=1000, rounds=2)
    assert result["peak_actors"] == 1001
    # Every worker computes 2 x 0.05 s and ships 2 messages; the sink
    # drains sequentially but transfers are tiny, so the makespan stays
    # near the per-worker critical path regardless of the fleet size.
    assert 0.1 <= result["simulated_time_s"] < 2.0


def test_s5_failure_churn_fleet_survives():
    """Tier-2 acceptance: >= 50 host failures, zero lost results."""
    result = run_failure_churn(num_workers=64, results_target=1920)
    assert result["failures"] >= 50
    assert result["restarts"] > 0


if __name__ == "__main__":
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    outcome = run_fleet(num_workers=workers)
    for key, value in outcome.items():
        print(f"{key}: {value}")
