"""Experiment E1 — the paper's validation figure.

*"Random topology generated with BRITE (random bandwidths and latencies);
10 random flows for 10 random source-destination pairs; each flow transfers
100 MBytes (operation in steady-state); comparison between NS2, GTNets, and
SimGrid.  Flow transfer rates simulated by SimGrid are within +/-15% of
those obtained with packet-level simulators, with most within only a few
percents."*

This harness regenerates the per-flow bar chart: for every flow it reports
the rate according to the fluid (MaxMin) model and according to the
packet-level comparator, plus the relative difference.  Flow sizes are
scaled down from 100 MB to keep the packet-level side tractable in pure
Python; both simulators see the same sizes, so the comparison is unchanged
(the flows still reach steady state).
"""

import statistics

import pytest

from bench_util import print_table
from repro.packet import FlowSpec, PacketSimulator
from repro.platform.brite import make_waxman_topology, random_flows
from repro.s4u import Engine

NUM_NODES = 10
NUM_FLOWS = 10
FLOW_BYTES = 20e6        # scaled-down stand-in for the paper's 100 MB
TOPOLOGY_SEED = 42
FLOW_SEED = 7


def fluid_rates(flow_bytes=FLOW_BYTES):
    platform = make_waxman_topology(num_nodes=NUM_NODES, seed=TOPOLOGY_SEED)
    flows = random_flows(platform, num_flows=NUM_FLOWS, seed=FLOW_SEED)
    engine = Engine(platform)
    durations = {}

    def sender(actor, mailbox, nbytes):
        yield actor.engine.mailbox(mailbox).put(mailbox, size=nbytes)

    def receiver(actor, mailbox, key):
        start = actor.now
        yield actor.engine.mailbox(mailbox).get()
        durations[key] = actor.now - start

    for idx, (src, dst) in enumerate(flows):
        engine.add_actor(f"s{idx}", src, sender, f"f{idx}", flow_bytes)
        engine.add_actor(f"r{idx}", dst, receiver, f"f{idx}", idx)
    engine.run()
    return [flow_bytes / durations[idx] for idx in range(NUM_FLOWS)], flows


def packet_rates(flow_bytes=FLOW_BYTES):
    platform = make_waxman_topology(num_nodes=NUM_NODES, seed=TOPOLOGY_SEED)
    flows = random_flows(platform, num_flows=NUM_FLOWS, seed=FLOW_SEED)
    sim = PacketSimulator(platform)
    results = sim.run([FlowSpec(src, dst, flow_bytes, flow_id=idx)
                       for idx, (src, dst) in enumerate(flows)])
    by_id = {r.flow_id: r.throughput for r in results}
    return [by_id[idx] for idx in range(NUM_FLOWS)]


def test_e1_flow_rates_fluid_vs_packet(benchmark):
    """Regenerates the per-flow transfer-rate comparison (bar chart)."""
    fluid, flows = benchmark(fluid_rates)
    packet = packet_rates()

    rows = []
    gaps = []
    for idx in range(NUM_FLOWS):
        gap = (fluid[idx] - packet[idx]) / packet[idx]
        gaps.append(abs(gap))
        rows.append((idx + 1, f"{flows[idx][0]}->{flows[idx][1]}",
                     f"{packet[idx] / 1e6:.3f}",
                     f"{fluid[idx] / 1e6:.3f}",
                     f"{gap * +100:+.1f}%"))
    print_table("E1: per-flow transfer rates (MB/s)",
                ["flow", "pair", "packet-level", "SimGrid fluid", "gap"],
                rows)
    print(f"median |gap| = {statistics.median(gaps) * 100:.1f}%, "
          f"max |gap| = {max(gaps) * 100:.1f}% "
          "(paper: within +/-15%, most within a few percent)")

    # Shape assertions: the fluid model is a faithful stand-in for the
    # packet-level baseline.  (Thresholds are looser than the paper's
    # because our flows are 5x shorter, so slow-start weighs more.)
    assert statistics.median(gaps) < 0.25
    assert max(gaps) < 0.60
    # and the two simulators agree on the aggregate bandwidth delivered
    assert sum(fluid) == pytest.approx(sum(packet), rel=0.25)
