"""PR 9 scenarios — availability modulation, cluster replay, recovery.

Three workloads drive the trace-modulated kernel end to end:

* **availability churn** (:func:`run_availability_churn`) — a star fleet
  whose every leaf carries a phase-shifted periodic availability trace
  while a seeded :class:`~repro.s4u.failure.FailureInjector` churns hosts
  on top: the trace heap, the capacity write path and the failure path
  all stay hot at once;
* **cluster replay** (:func:`run_replay_cluster`) — the
  :mod:`repro.replay` frontend replaying a synthetic cluster log (Poisson
  arrivals, per-node load dips, finite failure pulses) on an s4u fleet;
* **recovery policies** (:func:`run_recovery_policies`) — periodic vs
  event-driven checkpointing compared over a seed grid with the campaign
  runner, every run forked from one warmed snapshot.

Run standalone (``python bench_availability.py``) or through
``run_benchmarks.py``.
"""

import time

from repro.platform import Platform
from repro.s4u import Engine, FailureInjector
from repro.surf.trace import Trace

from bench_s4u_scale import solver_stats


def _traced_star(num_workers, host_speed=1e9, link_bandwidth=125e6,
                 link_latency=1e-4, load_period=2.0, dip=0.5):
    """A star whose leaves all carry phase-shifted availability dips."""
    platform = Platform("availability-star")
    platform.add_host("center", host_speed)
    for i in range(num_workers):
        phase = 0.1 + (i % 16) * (load_period - 0.4) / 16.0
        trace = Trace([(0.0, 1.0), (phase, dip), (phase + 0.2, 1.0)],
                      period=load_period, name=f"leaf-load-{i}")
        host = platform.add_host(f"leaf-{i}", host_speed,
                                 availability_trace=trace)
        link = platform.add_link(f"leaf-link-{i}", link_bandwidth,
                                 link_latency)
        platform.connect(host.name, "center", link.name)
    return platform


def run_availability_churn(num_workers: int = 64,
                           results_target: int = 1000,
                           flops: float = 5e7, msg_bytes: float = 1e4,
                           seed: int = 42, mtbf: float = 0.01,
                           mean_downtime: float = 0.05,
                           max_failures: int = 50) -> dict:
    """Fleet under trace-driven external load *and* seeded churn.

    Every worker's host speed oscillates with its availability trace
    (dips de-synchronized across the fleet, so trace events fire all the
    time), the injector knocks hosts out on top, and the run ends when
    the sink banked ``results_target`` results.  Reported events include
    the availability events actually applied (counted through the
    ``on_resource_speed_change`` observer — proving the trace heap fired)
    next to the failure/restart counters and the solver stats.
    """
    from repro.exceptions import TransferFailureError

    engine = Engine(_traced_star(num_workers))
    received = [0]
    speed_changes = [0]
    engine.on_resource_speed_change(
        lambda resource, speed: speed_changes.__setitem__(
            0, speed_changes[0] + 1))

    def sink(actor):
        box = engine.mailbox("sink")
        while received[0] < results_target:
            try:
                yield box.get()
                received[0] += 1
            except TransferFailureError:
                continue

    def worker(actor, index):
        box = engine.mailbox("sink")
        while True:
            yield actor.execute(flops)
            yield box.put(index, size=msg_bytes)

    engine.add_actor("sink", "center", sink)
    for i in range(num_workers):
        engine.add_actor(f"worker-{i}", f"leaf-{i}", worker, i,
                         daemon=True, auto_restart=True)
    injector = FailureInjector(
        engine, seed=seed, hosts=[f"leaf-{i}" for i in range(num_workers)],
        mtbf=mtbf, mean_downtime=mean_downtime,
        max_failures=max_failures).start()

    start = time.perf_counter()
    simulated = engine.run()
    wall = time.perf_counter() - start
    if received[0] != results_target:
        raise AssertionError(
            f"sink banked {received[0]} of {results_target} results")
    if speed_changes[0] == 0:
        raise AssertionError("no availability event fired — trace heap dead")

    events = (results_target + speed_changes[0] + injector.failures
              + engine.restart_count)
    return {
        "simulated_time_s": simulated,
        "wall_clock_s": wall,
        "peak_actors": num_workers + 1,
        "events": events,
        "events_per_s": events / wall if wall > 0 else float("inf"),
        "speed_changes": speed_changes[0],
        "failures": injector.failures,
        "restores": injector.restores,
        "restarts": engine.restart_count,
        "lmm": solver_stats(engine),
    }


def run_replay_cluster(num_jobs: int = 128, num_hosts: int = 16,
                       seed: int = 7, churn_seed: int = 11) -> dict:
    """Replay a synthetic cluster log through :mod:`repro.replay`."""
    from repro.replay import ClusterReplay, synthetic_workload

    workload = synthetic_workload(seed=seed, num_hosts=num_hosts,
                                  num_jobs=num_jobs,
                                  mean_interarrival=0.1, mean_flops=5e8)
    replay = ClusterReplay(workload, churn_seed=churn_seed,
                           churn_mtbf=1.0, churn_downtime=0.3,
                           churn_max_failures=8)
    start = time.perf_counter()
    metrics = replay.run()
    wall = time.perf_counter() - start
    if metrics["completed"] == 0:
        raise AssertionError("replay completed no job at all")
    events = (metrics["dispatched"] + metrics["completed"]
              + metrics["speed_changes"] + metrics["host_downs"])
    return {
        "simulated_time_s": metrics["final_time"],
        "wall_clock_s": wall,
        "peak_actors": num_hosts + 2,
        "events": events,
        "events_per_s": events / wall if wall > 0 else float("inf"),
        "jobs": metrics["jobs"],
        "completed": metrics["completed"],
        "makespan": metrics["makespan"],
        "speed_changes": metrics["speed_changes"],
        "failures": metrics["injected_failures"],
    }


def run_recovery_policies(num_seeds: int = 8) -> dict:
    """Periodic vs event checkpointing over a seed grid (campaign-run)."""
    from repro.replay import compare_recovery_policies

    start = time.perf_counter()
    report = compare_recovery_policies(range(1, num_seeds + 1))
    wall = time.perf_counter() - start
    summary = report["summary"]
    for policy in ("periodic", "event"):
        if summary[policy]["completed"]["min"] < 1:
            raise AssertionError(f"{policy}: a run completed no worker")
    events = 2 * num_seeds
    return {
        "wall_clock_s": wall,
        "events": events,
        "events_per_s": events / wall if wall > 0 else float("inf"),
        "forked": report["forked"],
        "periodic_makespan_mean": summary["periodic"]["makespan"]["mean"],
        "event_makespan_mean": summary["event"]["makespan"]["mean"],
        "periodic_wasted_mean": summary["periodic"]["wasted_flops"]["mean"],
        "event_wasted_mean": summary["event"]["wasted_flops"]["mean"],
    }


if __name__ == "__main__":
    for name, result in (
            ("availability_churn", run_availability_churn(16, 200)),
            ("replay_cluster", run_replay_cluster(32, num_hosts=8)),
            ("recovery_policies", run_recovery_policies(3))):
        print(name, {k: v for k, v in result.items() if k != "lmm"})
