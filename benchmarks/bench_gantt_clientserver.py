"""Experiment E4 — the paper's Gantt chart figure.

*"Gantt chart for an execution of the above code for 2 servers and 3
clients.  Dark portions denote computations, light portions denote
communications.  Concurrent communications interfere with each other as the
TCP flows share network links."*

The harness replays the paper's MSG client/server code (30 MFlop / 3.2 MB
requests, 10.5 MFlop local tasks, 10 KB acks) with 3 clients and 2 servers
on the hub/switch/router/Internet platform, prints the resulting Gantt rows
and asserts the figure's qualitative features.
"""

import pytest

from bench_util import print_table
from repro.msg import Environment, MSG_task_create
from repro.platform import make_client_server_lan
from repro.tracing import GanttChart, Recorder, render_ascii_gantt

PORT_REQUEST = 22
PORT_ACK = 23
NUM_CLIENTS = 3
NUM_SERVERS = 2
REQUESTS_PER_CLIENT = 3


def client(proc, server_name, client_index):
    for round_idx in range(REQUESTS_PER_CLIENT):
        remote = MSG_task_create(f"Remote-c{client_index}-r{round_idx}",
                                 30.0, 3.2)
        yield proc.put(remote, server_name, PORT_REQUEST)
        local = MSG_task_create(f"Local-c{client_index}-r{round_idx}",
                                10.50, 3.2)
        yield proc.execute(local)
        yield proc.get(PORT_ACK)


def server(proc, expected_requests):
    for _ in range(expected_requests):
        task = yield proc.get(PORT_REQUEST)
        yield proc.execute(task)
        ack = MSG_task_create("Ack", 0, 0.01)
        yield proc.put(ack, task.sender.host, PORT_ACK)


def simulate():
    platform = make_client_server_lan(num_clients=NUM_CLIENTS,
                                      num_servers=NUM_SERVERS)
    recorder = Recorder()
    env = Environment(platform, recorder=recorder)
    requests_per_server = [0] * NUM_SERVERS
    for c in range(NUM_CLIENTS):
        requests_per_server[c % NUM_SERVERS] += REQUESTS_PER_CLIENT
    for s in range(NUM_SERVERS):
        env.create_process(f"server-{s}", f"server-{s}", server,
                           requests_per_server[s])
    for c in range(NUM_CLIENTS):
        env.create_process(f"client-{c}", f"client-{c}", client,
                           f"server-{c % NUM_SERVERS}", c)
    makespan = env.run()
    return makespan, recorder


def test_e4_client_server_gantt_chart(benchmark):
    makespan, recorder = benchmark(simulate)
    chart = GanttChart(recorder)

    print("\n=== E4: client/server Gantt chart "
          "(# = computation, - = communication) ===")
    print(render_ascii_gantt(chart, width=70))
    rows = [(name, f"{totals['compute']:.3f}", f"{totals['comm']:.3f}",
             f"{totals['idle']:.3f}")
            for name, totals in sorted(chart.summary().items())]
    print_table("E4: per-host busy/idle seconds",
                ("host", "compute (dark)", "comm (light)", "idle"), rows)
    print(f"makespan = {makespan:.2f} s, overlapping communication pairs = "
          f"{chart.overlapping_comms()}")

    summary = chart.summary()
    # every client and server appears on the chart
    assert len(summary) == NUM_CLIENTS + NUM_SERVERS
    # dark portions: every server computed; every client computed locally
    assert all(summary[f"server-{s}"]["compute"] > 0
               for s in range(NUM_SERVERS))
    assert all(summary[f"client-{c}"]["compute"] > 0
               for c in range(NUM_CLIENTS))
    # light portions dominate (the 3.2 MB transfers cross a slow hub link)
    assert all(totals["comm"] > totals["compute"]
               for totals in summary.values())
    # the figure's headline: concurrent communications interfere
    assert chart.overlapping_comms() > 0
    # interference check: with a single client (no sharing), each request
    # round is faster than the average round of the contended run
    single_platform = make_client_server_lan(num_clients=1, num_servers=1)
    single_recorder = Recorder()
    single_env = Environment(single_platform, recorder=single_recorder)
    single_env.create_process("server-0", "server-0", server,
                              REQUESTS_PER_CLIENT)
    single_env.create_process("client-0", "client-0", client, "server-0", 0)
    single_makespan = single_env.run()
    assert makespan > single_makespan
