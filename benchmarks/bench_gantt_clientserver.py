"""Experiment E4 — the paper's Gantt chart figure.

*"Gantt chart for an execution of the above code for 2 servers and 3
clients.  Dark portions denote computations, light portions denote
communications.  Concurrent communications interfere with each other as the
TCP flows share network links."*

The harness replays the paper's client/server code (30 MFlop / 3.2 MB
requests, 10.5 MFlop local tasks, 10 KB acks) with 3 clients and 2 servers
on the hub/switch/router/Internet platform, prints the resulting Gantt rows
and asserts the figure's qualitative features.
"""

import pytest

from bench_util import print_table
from repro.platform import make_client_server_lan
from repro.s4u import Engine
from repro.tracing import GanttChart, Recorder, render_ascii_gantt

MFLOP = 1e6
MBYTE = 1e6
NUM_CLIENTS = 3
NUM_SERVERS = 2
REQUESTS_PER_CLIENT = 3


def client(actor, server_name, client_index):
    requests = actor.engine.mailbox(f"{server_name}:req")
    acks = actor.engine.mailbox(f"client-{client_index}:ack")
    for round_idx in range(REQUESTS_PER_CLIENT):
        yield requests.put((acks.name, 30.0 * MFLOP), size=3.2 * MBYTE,
                           name=f"Remote-c{client_index}-r{round_idx}")
        yield actor.execute(10.50 * MFLOP,
                            name=f"Local-c{client_index}-r{round_idx}")
        yield acks.get()


def server(actor, name, expected_requests):
    requests = actor.engine.mailbox(f"{name}:req")
    for _ in range(expected_requests):
        reply_to, flops = yield requests.get()
        yield actor.execute(flops)
        yield actor.engine.mailbox(reply_to).put("Ack", size=0.01 * MBYTE)


def simulate():
    platform = make_client_server_lan(num_clients=NUM_CLIENTS,
                                      num_servers=NUM_SERVERS)
    recorder = Recorder()
    engine = Engine(platform, recorder=recorder)
    requests_per_server = [0] * NUM_SERVERS
    for c in range(NUM_CLIENTS):
        requests_per_server[c % NUM_SERVERS] += REQUESTS_PER_CLIENT
    for s in range(NUM_SERVERS):
        engine.add_actor(f"server-{s}", f"server-{s}", server,
                         f"server-{s}", requests_per_server[s])
    for c in range(NUM_CLIENTS):
        engine.add_actor(f"client-{c}", f"client-{c}", client,
                         f"server-{c % NUM_SERVERS}", c)
    makespan = engine.run()
    return makespan, recorder


def test_e4_client_server_gantt_chart(benchmark):
    makespan, recorder = benchmark(simulate)
    chart = GanttChart(recorder)

    print("\n=== E4: client/server Gantt chart "
          "(# = computation, - = communication) ===")
    print(render_ascii_gantt(chart, width=70))
    rows = [(name, f"{totals['compute']:.3f}", f"{totals['comm']:.3f}",
             f"{totals['idle']:.3f}")
            for name, totals in sorted(chart.summary().items())]
    print_table("E4: per-host busy/idle seconds",
                ("host", "compute (dark)", "comm (light)", "idle"), rows)
    print(f"makespan = {makespan:.2f} s, overlapping communication pairs = "
          f"{chart.overlapping_comms()}")

    summary = chart.summary()
    # every client and server appears on the chart
    assert len(summary) == NUM_CLIENTS + NUM_SERVERS
    # dark portions: every server computed; every client computed locally
    assert all(summary[f"server-{s}"]["compute"] > 0
               for s in range(NUM_SERVERS))
    assert all(summary[f"client-{c}"]["compute"] > 0
               for c in range(NUM_CLIENTS))
    # light portions dominate (the 3.2 MB transfers cross a slow hub link)
    assert all(totals["comm"] > totals["compute"]
               for totals in summary.values())
    # the figure's headline: concurrent communications interfere
    assert chart.overlapping_comms() > 0
    # interference check: with a single client (no sharing), each request
    # round is faster than the average round of the contended run
    single_platform = make_client_server_lan(num_clients=1, num_servers=1)
    single_recorder = Recorder()
    single_engine = Engine(single_platform, recorder=single_recorder)
    single_engine.add_actor("server-0", "server-0", server, "server-0",
                            REQUESTS_PER_CLIENT)
    single_engine.add_actor("client-0", "client-0", client, "server-0", 0)
    single_makespan = single_engine.run()
    assert makespan > single_makespan
