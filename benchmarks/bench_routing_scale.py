"""Scalability of hierarchical routing and lazy platform realization (PR 6).

Two scenarios for the runner in ``run_benchmarks.py``:

* ``routing_scale`` — resolve a deterministic batch of end-to-end routes
  on a zoned grid behind the LRU-bounded route cache.  Route resolution
  is per-zone (LAN + WAN + LAN segments concatenated at the gateways), so
  cost per route and total memory must stay flat as the host count grows
  — no O(hosts²) table is ever built.
* ``platform_realize`` — build a zoned grid of ``size`` hosts, realize it
  **lazily**, wrap it in an s4u :class:`~repro.s4u.Engine` and run one
  cross-site ping.  Only the touched resources (2 CPUs, 4 links) may
  materialize; the wall clock must therefore scale with the description
  (O(hosts) dict fills), not with SURF resource construction.
"""

from repro.platform import make_zoned_grid
from repro.s4u import Engine

HOSTS_PER_SITE = 100


def _grid(num_hosts):
    if num_hosts % HOSTS_PER_SITE:
        raise ValueError(f"num_hosts must be a multiple of {HOSTS_PER_SITE}")
    return make_zoned_grid(num_sites=num_hosts // HOSTS_PER_SITE,
                           hosts_per_site=HOSTS_PER_SITE)


def run_routing_scale(num_hosts, num_routes=2000):
    """Resolve ``num_routes`` deterministic cross- and intra-site routes."""
    platform = _grid(num_hosts)
    num_sites = num_hosts // HOSTS_PER_SITE
    total_links = 0
    for k in range(num_routes):
        # A deterministic scatter over sites and hosts: mixes intra-site,
        # cross-site and repeated pairs (the latter exercising the cache).
        src_site, dst_site = (k * 7) % num_sites, (k * 13 + 1) % num_sites
        src = f"site-{src_site}-host-{k % HOSTS_PER_SITE}"
        dst = f"site-{dst_site}-host-{(k * 3) % HOSTS_PER_SITE}"
        if src != dst:
            total_links += len(platform.route_links(src, dst))
    stats = platform.route_cache_stats()["routes"]
    return {
        "num_hosts": num_hosts,
        "routes_resolved": num_routes,
        "route_links_total": total_links,
        "route_cache": stats,
        "events": num_routes,
    }


def run_platform_realize(num_hosts):
    """Lazily realize a ``num_hosts``-host grid and run one ping across it."""
    platform = _grid(num_hosts)
    num_sites = num_hosts // HOSTS_PER_SITE
    platform.realize(lazy=True)
    engine = Engine(platform)
    src = "site-0-host-0"
    dst = f"site-{num_sites - 1}-host-{HOSTS_PER_SITE - 1}"

    def sender(actor):
        yield actor.engine.mailbox("ping").put("ping", size=1e6)

    def receiver(actor):
        yield actor.engine.mailbox("ping").get()

    engine.add_actor("sender", src, sender)
    engine.add_actor("receiver", dst, receiver)
    simulated = engine.run()
    return {
        "num_hosts": num_hosts,
        "simulated_time_s": simulated,
        "cpus_materialized": len(platform.cpu_by_host),
        "links_materialized": len(platform.link_by_name),
        "peak_actors": 2,
        "events": 1,
    }


def main():
    for num_hosts in (1000, 10_000, 100_000):
        print(run_routing_scale(num_hosts))
        print(run_platform_realize(num_hosts))


if __name__ == "__main__":
    main()
