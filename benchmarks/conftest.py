"""Shared configuration for the benchmark harness.

Every benchmark prints the rows/series of the paper artefact it regenerates
(`-s` shows them); pytest-benchmark additionally records the wall-clock cost
of the simulation itself.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def print_table(title, headers, rows):
    """Render a small fixed-width table to stdout (shown with pytest -s)."""
    widths = [max(len(str(h)), *(len(str(row[i])) for row in rows))
              for i, h in enumerate(headers)] if rows else [len(h) for h in headers]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
