"""Small shared helpers for the benchmark harnesses."""


def print_table(title, headers, rows):
    """Render a small fixed-width table to stdout (shown with pytest -s)."""
    if rows:
        widths = [max(len(str(h)), *(len(str(row[i])) for row in rows))
                  for i, h in enumerate(headers)]
    else:
        widths = [len(str(h)) for h in headers]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
