"""Experiment E7 — "Simulation time is orders of magnitude faster".

The validation text of the paper claims the fluid simulation runs orders of
magnitude faster than packet-level simulators for the same scenario.  This
harness measures the wall-clock time both simulators need for the E1
workload (same topology, same flows) and reports the speedup.
"""

import time

import pytest

from bench_util import print_table
from repro.packet import FlowSpec, PacketSimulator
from repro.platform.brite import make_waxman_topology, random_flows
from repro.s4u import Engine

NUM_NODES = 10
NUM_FLOWS = 10
FLOW_BYTES = 10e6
TOPOLOGY_SEED = 42
FLOW_SEED = 7


def run_fluid():
    platform = make_waxman_topology(num_nodes=NUM_NODES, seed=TOPOLOGY_SEED)
    flows = random_flows(platform, num_flows=NUM_FLOWS, seed=FLOW_SEED)
    engine = Engine(platform)

    def sender(actor, mailbox, nbytes):
        yield actor.engine.mailbox(mailbox).put(mailbox, size=nbytes)

    def receiver(actor, mailbox):
        yield actor.engine.mailbox(mailbox).get()

    for idx, (src, dst) in enumerate(flows):
        engine.add_actor(f"s{idx}", src, sender, f"f{idx}", FLOW_BYTES)
        engine.add_actor(f"r{idx}", dst, receiver, f"f{idx}")
    return engine.run()


def run_packet():
    platform = make_waxman_topology(num_nodes=NUM_NODES, seed=TOPOLOGY_SEED)
    flows = random_flows(platform, num_flows=NUM_FLOWS, seed=FLOW_SEED)
    sim = PacketSimulator(platform)
    return sim.run([FlowSpec(src, dst, FLOW_BYTES, flow_id=idx)
                    for idx, (src, dst) in enumerate(flows)])


def test_e7_fluid_simulation_speed_advantage(benchmark):
    # wall-clock of the packet-level comparator (measured once: it is slow)
    start = time.perf_counter()
    packet_results = run_packet()
    packet_wall = time.perf_counter() - start
    assert len(packet_results) == NUM_FLOWS

    # wall-clock of the fluid simulator (measured precisely by the harness)
    fluid_wall = benchmark(lambda: (time.perf_counter(), run_fluid(),
                                    time.perf_counter()))
    start_t, _, end_t = fluid_wall
    fluid_seconds = max(end_t - start_t, 1e-6)

    speedup = packet_wall / fluid_seconds
    print_table("E7: wall-clock cost of simulating the E1 scenario",
                ("simulator", "wall-clock (s)"),
                [("packet-level (NS2/GTNetS stand-in)", f"{packet_wall:.3f}"),
                 ("SimGrid fluid (SURF)", f"{fluid_seconds:.4f}"),
                 ("speedup", f"{speedup:.0f}x")])

    # The paper says "orders of magnitude"; require at least 20x here
    # (the packet side is scaled down to 10 MB flows to stay test-friendly —
    # with the paper's 100 MB flows the gap only widens).
    assert speedup > 20.0
