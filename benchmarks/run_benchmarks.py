#!/usr/bin/env python3
"""Benchmark runner: execute the bench_* scenarios, write machine-readable JSON.

Unlike the pytest harnesses in this directory (which print paper-artefact
tables and assert on simulated results), this runner is about the *perf
trajectory* of the simulator itself across PRs.  It imports the scenario
functions directly — no pytest, no plugins — times them, and writes a JSON
report (``BENCH_PR10.json`` by default) with, per scenario and size:

* ``wall_clock_s`` — how long the simulation took for real;
* ``events_per_s`` — simulated activity completions per wall-clock second,
  when the scenario can count them;
* ``peak_actors`` — how many simulated actors were alive at peak;
* scenario-specific metrics (simulated time, LMM solver counters...).

Usage::

    PYTHONPATH=../src python run_benchmarks.py              # full sweep
    PYTHONPATH=../src python run_benchmarks.py --smoke      # CI smoke sizes
    PYTHONPATH=../src python run_benchmarks.py --smoke --enforce-budgets
    PYTHONPATH=../src python run_benchmarks.py --only s4u_scale
    PYTHONPATH=../src python run_benchmarks.py --only s4u_scale --profile
    PYTHONPATH=../src python run_benchmarks.py --output /tmp/bench.json

See README.md in this directory for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
for _path in (os.path.join(ROOT, "src"), HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)


# ----------------------------------------------------------------------------------
# scenario wrappers: callable(size) -> metrics dict (wall clock is measured
# by the runner; wrappers report simulated results and event counts)
# ----------------------------------------------------------------------------------

def _scalability_processes(size):
    from bench_scalability_processes import (TASKS_PER_WORKER, master_worker)
    simulated = master_worker(size)
    # Per worker: TASKS_PER_WORKER execs + (TASKS_PER_WORKER + 1) messages.
    return {
        "simulated_time_s": simulated,
        "peak_actors": size + 1,
        "events": size * (2 * TASKS_PER_WORKER + 1),
    }


def _s4u_scale(size):
    from bench_s4u_scale import run_fleet
    result = run_fleet(num_workers=size)
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "events": result["activities"],
        "lmm": result["lmm"],
        "kernel": result["kernel"],
    }


def _sharded_zones(size):
    from bench_s4u_scale import run_sharded_zones
    result = run_sharded_zones(num_hosts=size)
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "events": result["activities"],
        "lmm": result["lmm"],
        "kernel": result["kernel"],
    }


def _s4u_pipeline(size):
    from bench_s4u_scale import run_pipeline
    result = run_pipeline(num_chains=size)
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "events": result["activities"],
        "lmm": result["lmm"],
    }


def _s4u_race(size):
    from bench_s4u_scale import run_activity_race
    result = run_activity_race(num_actors=size)
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "events": result["activities"],
        "lmm": result["lmm"],
    }


def _s4u_churn(size):
    from bench_s4u_scale import run_actor_churn
    result = run_actor_churn(waves=10, actors_per_wave=size)
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "total_actors": result["total_actors"],
        "events": result["activities"],
        "lmm": result["lmm"],
    }


def _failure_churn(size):
    from bench_s4u_scale import run_failure_churn
    result = run_failure_churn(num_workers=size, results_target=size * 30)
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "events": result["events"],
        "failures": result["failures"],
        "restores": result["restores"],
        "restarts": result["restarts"],
        "lmm": result["lmm"],
    }


def _availability_churn(size):
    from bench_availability import run_availability_churn
    result = run_availability_churn(num_workers=size,
                                    results_target=size * 15)
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "events": result["events"],
        "speed_changes": result["speed_changes"],
        "failures": result["failures"],
        "restarts": result["restarts"],
        "lmm": result["lmm"],
    }


def _replay_cluster(size):
    from bench_availability import run_replay_cluster
    result = run_replay_cluster(num_jobs=size, num_hosts=max(8, size // 8))
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "events": result["events"],
        "completed": result["completed"],
        "makespan": result["makespan"],
        "speed_changes": result["speed_changes"],
    }


def _recovery_policies(size):
    from bench_availability import run_recovery_policies
    return run_recovery_policies(num_seeds=size)


def _ft_supervisor_churn(size):
    from bench_ft import run_ft_supervisor_churn
    failures = 120 if size > 128 else (100 if size >= 128 else 20)
    result = run_ft_supervisor_churn(num_jobs=size,
                                     num_hosts=8 if size <= 32 else 16,
                                     max_failures=failures)
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "events": result["events"],
        "completed": result["completed"],
        "lost": result["lost"],
        "duplicates": result["duplicates"],
        "resubmitted": result["resubmitted"],
        "failures": result["failures"],
        "worker_restarts": result["worker_restarts"],
        "makespan": result["makespan"],
    }


def _smpi_scale(size):
    from bench_s4u_scale import run_smpi_scale
    result = run_smpi_scale(num_ranks=size)
    return {
        "simulated_time_s": result["simulated_time_s"],
        "peak_actors": result["peak_actors"],
        "events": result["events"],
        "lmm": result["lmm"],
    }


def _lmm_counters(system):
    return {
        "constraints_solved": system.constraints_solved,
        "variables_solved": system.variables_solved,
        "elements_visited": system.elements_visited,
        "heap_pops": system.heap_pops,
    }


def _maxmin_random_solve(size):
    from bench_maxmin_sharing import large_random_solve
    system = large_random_solve(num_constraints=max(4, size // 4),
                                num_variables=size)
    return {"events": size, "lmm": _lmm_counters(system)}


def _maxmin_parallel_solve(size):
    from bench_maxmin_sharing import parallel_vs_serial_solve
    result = parallel_vs_serial_solve(num_components=max(2, size // 24))
    if not result["identical"]:
        raise AssertionError("parallel solve diverged from serial solve")
    return {
        "events": size,
        "serial_s": result["serial_s"],
        "parallel_s": result["parallel_s"],
        "executor": result["executor"],
        "lmm": _lmm_counters(result["system"]),
    }


def _maxmin_dense_bottleneck(size):
    from bench_maxmin_sharing import dense_bottleneck_solve
    system = dense_bottleneck_solve(num_variables=size)
    return {"events": size, "lmm": _lmm_counters(system)}


def _smpi_matmul(size):
    from bench_smpi_matmul import homogeneous_platform, simulate
    simulated = simulate(homogeneous_platform, size)
    return {"simulated_time_s": simulated, "peak_actors": size}


def _gantt_clientserver(size):
    from bench_gantt_clientserver import (NUM_CLIENTS, NUM_SERVERS,
                                          REQUESTS_PER_CLIENT, simulate)
    makespan, _recorder = simulate()
    return {
        "simulated_time_s": makespan,
        "peak_actors": NUM_CLIENTS + NUM_SERVERS,
        "events": NUM_CLIENTS * REQUESTS_PER_CLIENT * 3,  # req + exec + ack
    }


def _traces_failures(size):
    from bench_traces_failures import simulate
    outcome = simulate(with_traces=True)
    return {"simulated_time_s": max(
        v for v in outcome.values() if isinstance(v, (int, float)))}


def _fluid_flows(size):
    from bench_speed_fluid_vs_packet import NUM_FLOWS, run_fluid
    simulated = run_fluid()
    return {"simulated_time_s": simulated, "events": NUM_FLOWS}


def _campaign_fanout(size):
    from bench_campaign import run_campaign_fanout
    return run_campaign_fanout(num_seeds=size)


def _routing_scale(size):
    from bench_routing_scale import run_routing_scale
    return run_routing_scale(num_hosts=size)


def _platform_realize(size):
    from bench_routing_scale import run_platform_realize
    return run_platform_realize(num_hosts=size)


#: name -> (wrapper, full sizes, smoke sizes).  ``None`` sizes mean the
#: scenario has one fixed configuration.
SCENARIOS = {
    "scalability_processes": (_scalability_processes, (16, 64, 256, 512),
                              (16,)),
    # The PR 7 acceptance ladder: the full sweep climbs to the 10⁵-actor
    # rung the sharded-kernel PR is judged on.
    "s4u_scale": (_s4u_scale, (1000, 10_000, 100_000), (200,)),
    # Zone-partitioned fleet on the sharded kernel (PR 7): sites map to
    # shards, every eighth worker crosses zones.
    "sharded_zones": (_sharded_zones, (1000, 10_000, 100_000), (200,)),
    "s4u_pipeline": (_s4u_pipeline, (100, 250), (25,)),
    "s4u_race": (_s4u_race, (500, 1000), (100,)),
    "s4u_churn": (_s4u_churn, (100, 250), (25,)),
    "failure_churn": (_failure_churn, (64, 256), (16,)),
    # Availability modulation (PR 9): phase-shifted periodic load dips on
    # every leaf + seeded churn — the trace heap, capacity write path and
    # restart path all hot at once.
    "availability_churn": (_availability_churn, (64, 256), (16,)),
    # Cluster-log replay through the repro.replay frontend (PR 9).
    "replay_cluster": (_replay_cluster, (128, 512), (32,)),
    # Periodic vs event checkpointing over a campaign seed grid, forked
    # from one warmed snapshot (PR 9 on top of the PR 8 runner).
    "recovery_policies": (_recovery_policies, (8, 16), (3,)),
    # Fault-tolerance toolkit (PR 10): supervised at-least-once replay
    # absorbing 100+ host failures at the full sizes with zero lost jobs
    # — detector, resubmitter, supervisor and collector dedup all hot.
    "ft_supervisor_churn": (_ft_supervisor_churn, (128, 256), (32,)),
    "smpi_scale": (_smpi_scale, (16, 32, 64), (8,)),
    "maxmin_random_solve": (_maxmin_random_solve, (800, 3200, 12800), (200,)),
    # Parallel-vs-serial component solves (PR 7): same disjoint-component
    # system solved with and without the worker pool, bit-identity checked.
    "maxmin_parallel_solve": (_maxmin_parallel_solve,
                              (1536, 6144, 24576), (480,)),
    "maxmin_dense_bottleneck": (_maxmin_dense_bottleneck,
                                (800, 3200, 12800), (200,)),
    "smpi_matmul": (_smpi_matmul, (2, 4, 8), (2,)),
    # Campaign fan-out (PR 8): a seed × config grid (16 seeds × 2 configs
    # at the smoke size) forked from one warmed ``engine.snapshot()`` blob
    # vs cold per-run replays of the warm prefix — bit-identity enforced,
    # fork must win wall-clock.  Workers from REPRO_CAMPAIGN_WORKERS /
    # REPRO_PARALLEL, so CI smokes the serial and 2-worker pool modes.
    "campaign_fanout": (_campaign_fanout, (16, 64), (16,)),
    "gantt_clientserver": (_gantt_clientserver, (None,), (None,)),
    "traces_failures": (_traces_failures, (None,), (None,)),
    "fluid_flows": (_fluid_flows, (None,), (None,)),
    # Hierarchical routing (PR 6): the smoke size IS the acceptance size —
    # a 10⁵-host zoned platform must resolve routes and realize lazily
    # inside the budget, or the O(touched) guarantee regressed.
    "routing_scale": (_routing_scale, (1000, 10_000, 100_000), (100_000,)),
    "platform_realize": (_platform_realize, (1000, 10_000, 100_000),
                         (100_000,)),
}


#: Per-scenario wall-clock budgets for the ``--smoke`` sizes, in seconds.
#: Generous multiples of the recorded smoke times (all a few seconds at
#: most on the lazy kernel, see BENCH_PR7.json) so CI noise never trips them,
#: but a solver regression that reintroduces per-round rescans still fails
#: loudly *attributed to the scenario that caused it* instead of only
#: blowing the job's global timeout.
SMOKE_BUDGETS_S = {
    "scalability_processes": 10.0,
    "s4u_scale": 15.0,
    "sharded_zones": 15.0,
    "maxmin_parallel_solve": 15.0,
    "s4u_pipeline": 15.0,
    "s4u_race": 10.0,
    "s4u_churn": 10.0,
    "failure_churn": 20.0,
    "availability_churn": 20.0,
    "replay_cluster": 20.0,
    "recovery_policies": 30.0,
    "ft_supervisor_churn": 20.0,
    "smpi_scale": 10.0,
    "maxmin_random_solve": 10.0,
    "maxmin_dense_bottleneck": 10.0,
    "smpi_matmul": 15.0,
    "campaign_fanout": 30.0,
    "gantt_clientserver": 10.0,
    "traces_failures": 10.0,
    "fluid_flows": 15.0,
    "routing_scale": 20.0,
    "platform_realize": 20.0,
}


def run_scenario(name, wrapper, size, profile=False):
    if profile:
        import cProfile
        profiler = cProfile.Profile()
        start = time.perf_counter()
        metrics = profiler.runcall(wrapper, size)
        wall = time.perf_counter() - start
    else:
        start = time.perf_counter()
        metrics = wrapper(size)
        wall = time.perf_counter() - start
    entry = {"scenario": name, "size": size, "wall_clock_s": round(wall, 4)}
    events = metrics.pop("events", None)
    if events is not None:
        entry["events"] = events
        entry["events_per_s"] = round(events / wall, 1) if wall > 0 else None
    entry.update(metrics)
    if profile:
        import pstats
        print(f"--- profile: {name}"
              + (f" size={size}" if size is not None else "")
              + " (top 20 by cumulative time; wall_clock_s includes "
                "profiler overhead) ---")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run the simulator benchmarks and write a JSON report.")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest sizes only (CI regression smoke)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", choices=sorted(SCENARIOS),
                        help="run only the given scenario (repeatable)")
    parser.add_argument("--profile", action="store_true",
                        help="wrap each scenario in cProfile and print the "
                             "top-20 cumulative functions (hot-path hunting "
                             "for perf PRs; timings include the profiler)")
    parser.add_argument("--enforce-budgets", action="store_true",
                        help="with --smoke: fail when a scenario exceeds its "
                             "per-scenario wall-clock budget, naming the "
                             "offender (CI regression attribution)")
    parser.add_argument("--output", default=os.path.join(ROOT, "BENCH_PR10.json"),
                        help="path of the JSON report (default: %(default)s)")
    args = parser.parse_args(argv)

    names = args.only or sorted(SCENARIOS)
    results = []
    blown = []
    for name in names:
        wrapper, full_sizes, smoke_sizes = SCENARIOS[name]
        for size in (smoke_sizes if args.smoke else full_sizes):
            label = f"{name}" + (f" size={size}" if size is not None else "")
            print(f"running {label} ...", flush=True)
            entry = run_scenario(name, wrapper, size, profile=args.profile)
            print(f"  -> wall={entry['wall_clock_s']:.3f}s "
                  + (f"events/s={entry.get('events_per_s')}"
                     if "events_per_s" in entry else ""), flush=True)
            budget = SMOKE_BUDGETS_S.get(name)
            if (args.smoke and args.enforce_budgets and budget is not None
                    and entry["wall_clock_s"] > budget):
                blown.append((label, entry["wall_clock_s"], budget))
                print(f"  !! budget blown: {entry['wall_clock_s']:.3f}s "
                      f"> {budget:.1f}s", flush=True)
            results.append(entry)

    report = {
        "schema": "repro-bench/1",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }
    # A checked-in report carries the before/after record of the PR that
    # produced it (see README.md); refreshing the numbers must not drop it.
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as fh:
                previous = json.load(fh)
            for key in ("baseline", "headline"):
                if key in previous:
                    report[key] = previous[key]
        except (OSError, ValueError):
            pass
    if args.profile and args.output == parser.get_default("output"):
        # Profiled wall-clocks include the cProfile overhead; never let
        # them silently clobber the checked-in snapshot.
        print(f"not writing {args.output}: --profile numbers include the "
              "profiler overhead (pass --output explicitly to keep them)")
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}")
    if blown:
        print("per-scenario wall-clock budgets exceeded:")
        for label, wall, budget in blown:
            print(f"  {label}: {wall:.3f}s > budget {budget:.1f}s")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
