"""Experiment E6 — the SMPI panel: 1-D MPI matrix multiplication.

The paper's SMPI example distributes matrices by vertical strips, broadcasts
one column block per step and calls a local GEMM wrapped in
``SMPI_BENCH_ONCE``.  Its purpose is to *"study how an existing MPI
application reacts to platform heterogeneity"* — so the harness simulates
the same program on a homogeneous commodity cluster and on a heterogeneous
two-site grid, sweeping the rank count, and reports the simulated execution
times and the heterogeneity slowdown.
"""

import numpy as np
import pytest

from bench_util import print_table
from repro.platform import make_cluster, make_two_site_grid
from repro.smpi import SmpiWorld

MATRIX_SIZE = 64        # M = N = K


def parallel_mat_mult(mpi, M=MATRIX_SIZE, N=MATRIX_SIZE, K=MATRIX_SIZE):
    comm = mpi.COMM_WORLD
    num_proc = comm.size
    my_id = comm.rank
    KK = max(1, K // num_proc)
    NN = max(1, N // num_proc)
    rng = np.random.default_rng(my_id)
    A = rng.random((M, KK))
    B = rng.random((K, NN))
    C = np.zeros((M, NN))
    for k in range(K):
        owner = min(k // KK, num_proc - 1)
        buf_col = (np.ascontiguousarray(A[:, k % KK])
                   if owner == my_id else None)
        buf_col = comm.bcast(buf_col, root=owner)
        with mpi.sampler.bench_once("dgemm") as run_for_real:
            if run_for_real:
                C += np.outer(buf_col, B[k, :])
    return C


def simulate(platform_factory, num_ranks):
    world = SmpiWorld(platform_factory(num_ranks), num_ranks=num_ranks)
    return world.run(parallel_mat_mult)


def homogeneous_platform(num_ranks):
    return make_cluster(num_hosts=num_ranks, host_speed=1e9)


def heterogeneous_platform(num_ranks):
    return make_two_site_grid(hosts_per_site=max(1, num_ranks // 2),
                              host_speed=1e9, wan_bandwidth=1.25e6,
                              wan_latency=50e-3)


def test_e6_smpi_matmul_homogeneous_vs_heterogeneous(benchmark):
    rank_counts = (2, 4, 8)
    rows = []
    slowdowns = {}
    for num_ranks in rank_counts:
        homogeneous = simulate(homogeneous_platform, num_ranks)
        heterogeneous = simulate(heterogeneous_platform, num_ranks)
        slowdown = heterogeneous / homogeneous
        slowdowns[num_ranks] = slowdown
        rows.append((num_ranks, f"{homogeneous:.3f}s", f"{heterogeneous:.3f}s",
                     f"{slowdown:.1f}x"))
    print_table("E6: 1-D MPI matrix multiply under SMPI "
                f"(K={MATRIX_SIZE} broadcast steps)",
                ("ranks", "homogeneous cluster", "two-site grid (WAN)",
                 "slowdown"), rows)

    # Heterogeneity hurts: the WAN-crossing broadcasts dominate.
    assert all(s > 2.0 for s in slowdowns.values())
    # More ranks do not help once the WAN is the bottleneck; on the cluster
    # the simulated time must stay bounded as ranks increase.
    homogeneous_times = [simulate(homogeneous_platform, n)
                         for n in rank_counts]
    assert homogeneous_times[-1] < homogeneous_times[0] * 4

    # benchmark the 4-rank homogeneous simulation itself
    benchmark(simulate, homogeneous_platform, 4)
