"""PR 10 scenario — a supervised at-least-once fleet under heavy churn.

The fault-tolerance toolkit end to end: a :class:`~repro.replay.ClusterReplay`
in ``at_least_once`` mode — seq-numbered jobs, a heartbeat failure
detector driving resubmission, dedup at the collector — with the worker
fleet held up by a :class:`~repro.ft.Supervisor` instead of bare
``auto_restart``, while a seeded injector hammers the nodes.  At the full
sizes the fleet absorbs 100+ host failures and must still lose **zero**
jobs; the scenario asserts that, so a regression in any layer (detector,
resubmitter, supervisor respawn, dedup) fails the benchmark rather than
skewing its numbers.

Run standalone (``python bench_ft.py``) or through ``run_benchmarks.py``.
"""

import time


def run_ft_supervisor_churn(num_jobs: int = 256, num_hosts: int = 16,
                            seed: int = 7, churn_seed: int = 11,
                            churn_mtbf: float = 0.5,
                            churn_downtime: float = 0.5,
                            max_failures: int = 120) -> dict:
    """Supervised ALO replay absorbing ``max_failures`` host failures."""
    from repro.replay import ClusterReplay, synthetic_workload

    workload = synthetic_workload(seed=seed, num_hosts=num_hosts,
                                  num_jobs=num_jobs,
                                  mean_interarrival=0.1, mean_flops=5e8)
    replay = ClusterReplay(workload, churn_seed=churn_seed,
                           churn_mtbf=churn_mtbf,
                           churn_downtime=churn_downtime,
                           churn_max_failures=max_failures,
                           semantics="at_least_once", supervised=True)
    start = time.perf_counter()
    metrics = replay.run()
    wall = time.perf_counter() - start
    if metrics["injected_failures"] != max_failures:
        raise AssertionError(
            f"churn injected {metrics['injected_failures']} failures, "
            f"wanted {max_failures} — horizon too short for the schedule")
    if metrics["lost"] != 0:
        raise AssertionError(
            f"at-least-once replay lost {metrics['lost']} job(s) "
            f"({metrics['completed']}/{metrics['jobs']} completed)")
    events = (metrics["dispatched"] + metrics["completed"]
              + metrics["resubmitted"] + metrics["duplicates"]
              + metrics["host_downs"] + metrics["worker_restarts"])
    return {
        "simulated_time_s": metrics["final_time"],
        "wall_clock_s": wall,
        "peak_actors": num_hosts + 4,      # fleet + frontend machinery
        "events": events,
        "events_per_s": events / wall if wall > 0 else float("inf"),
        "jobs": metrics["jobs"],
        "completed": metrics["completed"],
        "lost": metrics["lost"],
        "duplicates": metrics["duplicates"],
        "resubmitted": metrics["resubmitted"],
        "suspects": metrics["suspects"],
        "failures": metrics["injected_failures"],
        "worker_restarts": metrics["worker_restarts"],
        "makespan": metrics["makespan"],
    }


if __name__ == "__main__":
    result = run_ft_supervisor_churn(64, num_hosts=8, max_failures=30)
    print("ft_supervisor_churn", result)
