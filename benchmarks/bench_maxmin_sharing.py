"""Experiment E5 — the MaxMin fairness illustration of the SURF panel.

The paper's SURF panel illustrates the unifying sharing model with a small
set of tasks crossing two resources (proc #1..#4 timeline) and lists the
scenarios it covers: multiple TCP flows sharing links, multiple CPU-bound
processes sharing a CPU, interference of communication and computation,
parallel tasks.

The harness reproduces those four sharing scenarios with the LMM solver and
prints the resulting allocations; pytest-benchmark additionally measures the
solver's cost on a larger random system (the ablation on solver scalability).
"""

import random

import pytest

from bench_util import print_table
from repro.surf.lmm import MaxMinSystem


def paper_figure_allocation():
    """The 4-task / 2-resource incidence of the paper's figure."""
    system = MaxMinSystem()
    r1 = system.new_constraint(1.0)
    r2 = system.new_constraint(1.0)
    p1, p2, p3, p4 = (system.new_variable() for _ in range(4))
    system.expand(r1, p1)
    system.expand(r1, p2)
    system.expand(r2, p2)
    system.expand(r2, p3)
    system.expand(r2, p4)
    system.solve()
    return [p1.value, p2.value, p3.value, p4.value]


def sharing_scenarios():
    """The four sharing scenarios listed in the SURF panel."""
    results = {}

    # multiple TCP flows sharing one link
    system = MaxMinSystem()
    link = system.new_constraint(1e7)
    flows = [system.new_variable() for _ in range(4)]
    for flow in flows:
        system.expand(link, flow)
    system.solve()
    results["4 TCP flows on a 10 MB/s link"] = [f.value for f in flows]

    # multiple CPU-bound processes sharing a CPU
    system = MaxMinSystem()
    cpu = system.new_constraint(2e9)
    procs = [system.new_variable() for _ in range(3)]
    for proc in procs:
        system.expand(cpu, proc)
    system.solve()
    results["3 processes on a 2 Gflop/s CPU"] = [p.value for p in procs]

    # interference of communication and computation (a NIC-limited host
    # where the transfer and the computation cross a shared IO constraint)
    system = MaxMinSystem()
    cpu = system.new_constraint(1e9)
    io_bus = system.new_constraint(1e8)
    compute = system.new_variable()
    transfer = system.new_variable()
    system.expand(cpu, compute)
    system.expand(io_bus, compute, usage=0.05)   # light bus usage
    system.expand(io_bus, transfer)
    system.solve()
    results["computation vs transfer on a shared bus"] = [compute.value,
                                                          transfer.value]

    # a parallel task spanning two CPUs and the link between them
    system = MaxMinSystem()
    cpu_a = system.new_constraint(1e9)
    cpu_b = system.new_constraint(1e9)
    net = system.new_constraint(1e8)
    parallel_task = system.new_variable()
    system.expand(cpu_a, parallel_task)
    system.expand(cpu_b, parallel_task)
    system.expand(net, parallel_task, usage=0.1)
    system.solve()
    results["parallel task on 2 CPUs + link"] = [parallel_task.value]
    return results


def large_random_solve(num_constraints=200, num_variables=800, seed=3):
    rng = random.Random(seed)
    system = MaxMinSystem()
    constraints = [system.new_constraint(rng.uniform(1e6, 1e9))
                   for _ in range(num_constraints)]
    for _ in range(num_variables):
        var = system.new_variable(weight=rng.uniform(0.5, 2.0))
        for constraint in rng.sample(constraints, rng.randint(1, 4)):
            system.expand(constraint, var)
    system.solve()
    return system


def build_dense_bottleneck(num_variables, capacity=1e9, seed=7,
                           bounded_fraction=0.875):
    """One shared constraint crossed by ``num_variables`` variables.

    The star/master-worker saturation shape: every flow funnels through a
    single bottleneck resource.  Most variables carry a distinct rate
    bound below their fair share, so progressive filling freezes them one
    at a time — the constraint's saturation level must be re-derived at
    every round.  A rescanning solver is O(N²) on this shape; the
    incremental solver is O(N log N).  Returns the *unsolved* system.
    """
    rng = random.Random(seed)
    system = MaxMinSystem()
    bottleneck = system.new_constraint(capacity)
    fair_share = capacity / num_variables
    for i in range(num_variables):
        if i < num_variables * bounded_fraction:
            bound = fair_share * rng.uniform(0.05, 0.95)
        else:
            bound = None            # frozen by the constraint's final round
        var = system.new_variable(weight=rng.uniform(0.5, 2.0), bound=bound)
        system.expand(bottleneck, var, rng.uniform(0.5, 2.0))
    return system


def dense_bottleneck_solve(num_variables=2000, seed=7):
    """Build and solve the dense-bottleneck system; returns the system."""
    system = build_dense_bottleneck(num_variables, seed=seed)
    system.solve()
    return system


def build_component_grid(num_components, vars_per_component=24, seed=5):
    """``num_components`` disjoint constraint groups in one system.

    Each group is 4 constraints crossed by ``vars_per_component``
    variables — the shape a zoned platform produces (per-site LANs with
    no cross-site elements), which is exactly what the parallel executor
    batches.  Returns the *unsolved* system and its variable handles.
    """
    rng = random.Random(seed)
    system = MaxMinSystem()
    variables = []
    for _ in range(num_components):
        group = [system.new_constraint(rng.uniform(1e6, 1e9))
                 for _ in range(4)]
        for _ in range(vars_per_component):
            var = system.new_variable(weight=rng.uniform(0.5, 2.0))
            for constraint in rng.sample(group, rng.randint(1, 3)):
                system.expand(constraint, var)
            variables.append(var)
    return system, variables


def parallel_vs_serial_solve(num_components=64, vars_per_component=24,
                             workers=None):
    """Solve the same disjoint-component system with and without the pool.

    Returns a dict with both wall-clocks, the bit-identity verdict and
    the serial system (for the solver counters).  ``workers=None`` reads
    ``REPRO_PARALLEL`` like the engine does, so the benchmark measures
    whatever configuration CI asked for; a 0-worker pool degenerates to
    two serial solves (the comparison then reports overhead-free parity).
    """
    import time as _time
    from repro.surf.shard import ParallelSolveExecutor

    serial_system, serial_vars = build_component_grid(
        num_components, vars_per_component)
    start = _time.perf_counter()
    serial_system.solve()
    serial_s = _time.perf_counter() - start

    parallel_system, parallel_vars = build_component_grid(
        num_components, vars_per_component)
    executor = ParallelSolveExecutor(workers=workers, min_components=2,
                                     min_work=1)
    parallel_system.executor = executor
    try:
        start = _time.perf_counter()
        parallel_system.solve()
        parallel_s = _time.perf_counter() - start
        stats = executor.stats()
    finally:
        executor.close()
        parallel_system.executor = None

    identical = all(a.value == b.value
                    for a, b in zip(serial_vars, parallel_vars))
    return {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "identical": identical,
        "executor": stats,
        "system": serial_system,
    }


def test_e5_maxmin_sharing_figure(benchmark):
    allocation = paper_figure_allocation()
    scenarios = sharing_scenarios()

    rows = [(f"proc #{i + 1}", f"{value:.3f}")
            for i, value in enumerate(allocation)]
    print_table("E5: MaxMin allocation of the paper's figure "
                "(2 resources of capacity 1.0)", ("task", "allocation"), rows)
    rows = [(name, ", ".join(f"{v:.3g}" for v in values))
            for name, values in scenarios.items()]
    print_table("E5: sharing scenarios of the SURF panel",
                ("scenario", "allocations"), rows)

    # the bottleneck resource is split three ways, the other task gets the rest
    assert allocation[1] == pytest.approx(1.0 / 3.0)
    assert allocation[2] == pytest.approx(1.0 / 3.0)
    assert allocation[3] == pytest.approx(1.0 / 3.0)
    assert allocation[0] == pytest.approx(2.0 / 3.0)
    # flows and processes get equal shares
    assert all(v == pytest.approx(2.5e6) for v in
               scenarios["4 TCP flows on a 10 MB/s link"])
    assert all(v == pytest.approx(2e9 / 3) for v in
               scenarios["3 processes on a 2 Gflop/s CPU"])

    # benchmark: one solve of a large random system (solver scalability)
    system = benchmark(large_random_solve)
    assert system.check_feasible()
