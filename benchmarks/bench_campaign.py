"""Campaign fan-out: one warmed snapshot vs N cold replays.

The campaign subsystem's pitch (PR 8) is measured here: a seed × config
grid of experiments that share an expensive common prefix (platform
realization + a long warm-up exchange).  The *cold* campaign replays
that prefix inside every run; the *forked* campaign pays it once, calls
``engine.snapshot()``, and every run resumes from the blob via
``Engine.restore``.  Both campaigns must produce bit-identical per-run
metrics — the fork only wins wall-clock, never changes results — and the
scenario raises if they diverge.

Worker count comes from ``REPRO_CAMPAIGN_WORKERS`` (falling back to
``REPRO_PARALLEL``), so the CI smoke exercises the serial and the
2-worker pool modes with the same knobs as the kernel executor.
"""

import random
import time

from repro import s4u
from repro.campaign import default_campaign_workers, grid, run_campaign
from repro.platform import make_star

NUM_HOSTS = 24
WARM_ROUNDS = 12
MEASURED_ROUNDS = 3
WARM_FLOPS = 5e6
CONFIGS = ({"label": "light", "flops": 4e6},
           {"label": "heavy", "flops": 1.2e7})


def build_engine():
    return s4u.Engine(make_star(num_hosts=NUM_HOSTS, host_speed=1e9,
                                link_bandwidth=125e6, link_latency=1e-4))


def run_phase(engine, rounds, flops, tag, rng=None):
    """One master/worker exchange: ``rounds`` jobs per leaf, gathered on
    the center host.  Returns the activity count (1 exec + 1 comm per
    job).  ``rng`` perturbs the job sizes, making dates a pure function
    of the seed."""
    def worker(actor, index):
        sink = engine.mailbox(tag)
        scale = 1.0 if rng is None else rng.uniform(0.5, 1.5)
        for round_no in range(rounds):
            yield actor.execute(flops * scale * (1 + (index + round_no) % 3))
            comm = yield sink.put_async(index, size=1e4)
            yield comm.wait()

    def master(actor):
        sink = engine.mailbox(tag)
        for _ in range(rounds * NUM_HOSTS):
            yield sink.get()

    engine.add_actor(f"{tag}-master", "center", master)
    for index in range(NUM_HOSTS):
        engine.add_actor(f"{tag}-w{index}", f"leaf-{index}", worker, index)
    engine.run()
    return 2 * rounds * NUM_HOSTS


def _measured(engine, seed, config):
    events = run_phase(engine, MEASURED_ROUNDS, config["flops"],
                       f"measured-{seed}", rng=random.Random(seed))
    return {"simulated_time_s": engine.now, "events": events}


def forked_experiment(engine, seed, config):
    """Fork mode: the engine arrives restored from the warmed blob."""
    return _measured(engine, seed, config)


def cold_experiment(seed, config):
    """Cold mode: rebuild the world and replay the warm prefix per run."""
    engine = build_engine()
    run_phase(engine, WARM_ROUNDS, WARM_FLOPS, "warm")
    try:
        return _measured(engine, seed, config)
    finally:
        engine.close()


def run_campaign_fanout(num_seeds=16, workers=None):
    """Time forked vs cold execution of the same grid; check identity."""
    if workers is None:
        workers = default_campaign_workers()
    specs = grid(range(num_seeds), list(CONFIGS))

    start = time.perf_counter()
    engine = build_engine()
    warm_events = run_phase(engine, WARM_ROUNDS, WARM_FLOPS, "warm")
    blob = engine.snapshot()
    engine.close()
    warm_prefix_s = time.perf_counter() - start

    start = time.perf_counter()
    forked = run_campaign(forked_experiment, specs, workers=workers,
                          snapshot=blob)
    fork_wall_s = time.perf_counter() - start

    start = time.perf_counter()
    cold = run_campaign(cold_experiment, specs, workers=workers)
    cold_wall_s = time.perf_counter() - start

    if forked.metrics() != cold.metrics():
        raise AssertionError(
            "forked campaign diverged from the cold per-seed replays")

    summary = forked.summary()
    measured_events = int(sum(
        run["metrics"]["events"] for run in forked.runs))
    return {
        "runs": len(specs),
        "workers": workers,
        "fallbacks": forked.fallbacks + cold.fallbacks,
        "snapshot_bytes": len(blob),
        "warm_prefix_s": round(warm_prefix_s, 4),
        "fork_wall_s": round(fork_wall_s, 4),
        "cold_wall_s": round(cold_wall_s, 4),
        "fork_speedup": round(cold_wall_s / fork_wall_s, 3)
        if fork_wall_s > 0 else None,
        "simulated_time_s": summary["simulated_time_s"]["median"],
        "events": warm_events + measured_events,
        "peak_actors": NUM_HOSTS + 1,
    }


if __name__ == "__main__":
    import json
    print(json.dumps(run_campaign_fanout(), indent=2))
