"""Experiment E2 — the paper's LAN table.

*"Average time to exchange one Pastry message on a LAN (in seconds) for
MPICH, OmniORB, PBIO, and XML-based communication, between PowerPC, Sparc,
and x86 architectures"* — with GRAS as the fifth (and fastest) column.

The harness regenerates the full 3x3 architecture matrix over a simulated
100 Mb/s / 50 us LAN and checks the orderings the paper's bar charts show:
GRAS is the fastest stack everywhere, XML the slowest, MPICH is unavailable
across heterogeneous pairs, and every time lands in the millisecond range.
"""

import pytest

from bench_util import print_table
from repro.platform import make_star
from repro.wire import ExchangeModel, PASTRY_MESSAGE_DESC, make_pastry_message

ARCHS = ("powerpc", "sparc", "x86")
CODE_NAMES = ("GRAS", "MPICH", "OmniORB", "PBIO", "XML")


def build_lan_model():
    platform = make_star(num_hosts=2, link_bandwidth=12.5e6,
                         link_latency=5e-5, name="lan")
    return ExchangeModel(platform, "leaf-0", "leaf-1")


def compute_table():
    model = build_lan_model()
    message = make_pastry_message()
    return model.table(PASTRY_MESSAGE_DESC, message, architectures=ARCHS)


def test_e2_lan_pastry_exchange_table(benchmark):
    table = benchmark(compute_table)

    rows = []
    for pair, results in sorted(table.items()):
        cells = []
        for name in CODE_NAMES:
            result = results[name]
            cells.append(f"{result.total_time * 1e3:.2f}ms"
                         if result.available else "n/a")
        rows.append((pair, *cells))
    print_table("E2: LAN Pastry message exchange time", ("pair", *CODE_NAMES),
                rows)

    for pair, results in table.items():
        src, dst = pair.split("->")
        gras = results["GRAS"].total_time
        # GRAS wins every supported comparison (paper: fastest everywhere)
        for name in CODE_NAMES[1:]:
            if results[name].available:
                assert gras <= results[name].total_time, (pair, name)
        # XML is the slowest available stack (paper: 12.8 - 55.7 ms vs 2-6 ms)
        xml = results["XML"].total_time
        assert all(xml >= results[name].total_time
                   for name in CODE_NAMES if results[name].available)
        # MPICH is n/a exactly for heterogeneous byte-order/size pairs
        homogeneous = (src == dst) or {src, dst} <= {"powerpc", "sparc"}
        assert results["MPICH"].available == homogeneous
        # PBIO is n/a whenever PowerPC is involved (as in the paper's table)
        assert results["PBIO"].available == ("powerpc" not in (src, dst))
        # the LAN exchange is millisecond-scale
        assert 1e-4 < gras < 5e-2
